"""GraphChi-style shards and Parallel Sliding Windows (PSW).

The paper's substrate is GraphChi, whose defining mechanism is the
Parallel Sliding Windows disk layout (Kyrola et al., OSDI'12): vertices
are split into ``K`` execution **intervals**; shard ``k`` holds every
edge whose *destination* lies in interval ``k``, sorted by source.
Processing interval ``k`` then needs shard ``k`` (the in-edges of the
interval) plus one sequential *sliding window* from each other shard
(the out-edges of the interval, which are contiguous there thanks to
the source sort) — ``K`` mostly-sequential reads instead of random I/O.

The paper loads its graphs fully in memory and explicitly excludes I/O
time from Fig. 3, so this module plays two roles here:

* a faithful storage substrate (:class:`ShardedGraph` with on-disk
  persistence via :mod:`repro.storage.binfmt`), with the PSW invariants
  property-tested;
* :class:`OutOfCoreRunner`, which executes the *deterministic*
  engine interval-by-interval, loading only one interval's subgraph
  worth of edge values at a time and accounting the bytes moved — the
  memory-footprint story of "large-scale graph computation on just a
  PC", kept separate from the racy engines exactly as the paper keeps
  I/O out of its measurements.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..graph import DiGraph
from ..engine.config import EngineConfig
from ..engine.frontier import Frontier, initial_frontier
from ..engine.program import UpdateContext, VertexProgram
from ..engine.result import IterationStats, RunResult
from ..engine.state import State
from .binfmt import (
    KIND_EDGE,
    KIND_META,
    KIND_TOPO_DST,
    KIND_TOPO_SRC,
    KIND_VERTEX,
    load_graph,
    open_container,
    save_graph,
    write_container,
)

__all__ = [
    "Shard",
    "ShardedGraph",
    "ShardStore",
    "StoreGraphView",
    "OutOfCoreRunner",
    "IOStats",
]


@dataclass(frozen=True)
class Shard:
    """Edges whose destination falls in one vertex interval, sorted by src."""

    index: int
    interval: tuple[int, int]  #: [lo, hi) destination vertex range
    src: np.ndarray
    dst: np.ndarray
    eid: np.ndarray  #: edge ids in the parent graph

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    def window(self, lo: int, hi: int) -> np.ndarray:
        """Edge ids whose *source* lies in ``[lo, hi)`` — the sliding
        window this shard contributes when interval ``[lo, hi)`` runs."""
        left = np.searchsorted(self.src, lo, side="left")
        right = np.searchsorted(self.src, hi, side="left")
        return self.eid[left:right]


class ShardedGraph:
    """A graph partitioned into PSW shards."""

    def __init__(self, graph: DiGraph, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        n = graph.num_vertices
        self._graph = graph
        self.num_shards = int(num_shards)
        # Equal-width vertex intervals (GraphChi balances by edge count;
        # equal width keeps the invariants simple and testable).
        bounds = np.linspace(0, n, num_shards + 1).astype(np.int64)
        self.intervals = [
            (int(bounds[k]), int(bounds[k + 1])) for k in range(num_shards)
        ]
        src, dst = graph.edge_src, graph.edge_dst
        self.shards: list[Shard] = []
        for k, (lo, hi) in enumerate(self.intervals):
            mask = (dst >= lo) & (dst < hi)
            eids = np.nonzero(mask)[0].astype(np.int64)
            order = np.argsort(src[eids], kind="stable")
            eids = eids[order]
            self.shards.append(
                Shard(
                    index=k,
                    interval=(lo, hi),
                    src=src[eids].copy(),
                    dst=dst[eids].copy(),
                    eid=eids,
                )
            )

    @property
    def graph(self) -> DiGraph:
        return self._graph

    def validate(self) -> None:
        """PSW invariants: shards partition the edges; sources sorted;
        every window query is consistent."""
        seen = np.concatenate([s.eid for s in self.shards]) if self.shards else np.array([])
        assert np.array_equal(np.sort(seen), np.arange(self._graph.num_edges))
        for s in self.shards:
            lo, hi = s.interval
            assert np.all((s.dst >= lo) & (s.dst < hi))
            assert np.all(np.diff(s.src) >= 0)

    def interval_edge_ids(self, k: int) -> np.ndarray:
        """All edge ids incident to interval ``k``'s vertices: its shard
        (in-edges) plus one window from every shard (out-edges)."""
        lo, hi = self.intervals[k]
        pieces = [self.shards[k].eid]
        for s in self.shards:
            pieces.append(s.window(lo, hi))
        return np.unique(np.concatenate(pieces))

    # -- persistence -----------------------------------------------------
    def save(self, directory: str | os.PathLike) -> None:
        """Persist each shard as one binary file plus a manifest."""
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "manifest.txt"), "w", encoding="utf-8") as fh:
            fh.write(f"{self._graph.num_vertices} {self._graph.num_edges} {self.num_shards}\n")
            for lo, hi in self.intervals:
                fh.write(f"{lo} {hi}\n")
        for s in self.shards:
            sub = DiGraph(self._graph.num_vertices, s.src, s.dst)
            save_graph(
                sub,
                os.path.join(directory, f"shard-{s.index}.bin"),
                edge_arrays={"parent_eid": _reorder_for(sub, s)},
            )

    @staticmethod
    def load(directory: str | os.PathLike) -> "ShardedGraph":
        """Rebuild the sharded graph from :meth:`save` output."""
        directory = os.fspath(directory)
        with open(os.path.join(directory, "manifest.txt"), "r", encoding="utf-8") as fh:
            n, m, k = (int(x) for x in fh.readline().split())
            intervals = [tuple(int(x) for x in fh.readline().split()) for _ in range(k)]
        src_parts, dst_parts = [], []
        for idx in range(k):
            sub, _, edge_arrays = load_graph(os.path.join(directory, f"shard-{idx}.bin"))
            src_parts.append(sub.edge_src)
            dst_parts.append(sub.edge_dst)
        src = np.concatenate(src_parts) if src_parts else np.array([], dtype=np.int64)
        dst = np.concatenate(dst_parts) if dst_parts else np.array([], dtype=np.int64)
        graph = DiGraph(n, src, dst)
        if graph.num_edges != m:
            raise ValueError(f"{directory}: manifest says {m} edges, shards held {graph.num_edges}")
        sharded = ShardedGraph(graph, k)
        if sharded.intervals != [tuple(iv) for iv in intervals]:
            raise ValueError(f"{directory}: manifest intervals do not match")
        return sharded


def _reorder_for(sub: DiGraph, shard: Shard) -> np.ndarray:
    """Map the sub-graph's canonical edge order back to parent edge ids."""
    order = np.lexsort((shard.dst, shard.src))
    return shard.eid[order].astype(np.int64)


class StoreGraphView:
    """Read-only graph facade over a :class:`ShardStore`'s topology.

    Exposes exactly the surface :class:`~repro.engine.state.FieldSpec`
    initializers and ``initial_frontier`` implementations use —
    ``num_vertices``/``num_edges``, zero-copy canonical ``edge_src`` /
    ``edge_dst`` memmap views, and the degree vectors — without
    materializing a :class:`~repro.graph.DiGraph` CSR in memory.
    """

    __slots__ = ("_store", "_in_degrees")

    def __init__(self, store: "ShardStore"):
        self._store = store
        self._in_degrees: np.ndarray | None = None

    @property
    def num_vertices(self) -> int:
        return self._store.num_vertices

    @property
    def num_edges(self) -> int:
        return self._store.num_edges

    @property
    def edge_src(self) -> np.ndarray:
        """Canonical-order edge sources (read-only memmap)."""
        return self._store.canon_src

    @property
    def edge_dst(self) -> np.ndarray:
        """Canonical-order edge destinations (read-only memmap)."""
        return self._store.canon_dst

    def out_degrees(self) -> np.ndarray:
        return self._store.out_degrees

    def in_degrees(self) -> np.ndarray:
        if self._in_degrees is None:
            self._in_degrees = np.bincount(
                self._store.canon_dst, minlength=self._store.num_vertices
            ).astype(np.int64)
        return self._in_degrees


class ShardStore:
    """On-disk PSW shard store in a single aligned v2 container.

    The canonical edge list is reordered *shard-major*: slot ``i`` of the
    store belongs to shard ``shard(i)`` (the interval owning the edge's
    destination), and within a shard slots are sorted by source with ties
    broken by canonical edge id — so within a shard the canonical ids are
    strictly ascending, which keeps duplicate-edge accumulation order and
    provenance ordering identical to the in-memory engines.

    Container blocks::

        src, dst                 canonical topology (kinds 2/3)
        psw_src, psw_dst         shard-major endpoints     (edge kind)
        psw_eid                  slot -> canonical edge id (edge kind)
        out_degrees              per-vertex out-degree     (vertex kind)
        bounds                   K+1 interval boundaries   (meta)
        shard_offsets            K+1 slot offsets of shards (meta)
        window_index             (K, K+1) flattened: window_index[j, k]
                                 is the first slot of shard j whose
                                 source is >= bounds[k]       (meta)

    Everything is opened as read-only ``np.memmap`` views; an execution
    touches only the slot ranges of the interval it is currently
    running, so resident set stays bounded by the largest interval.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        n, m, blocks = open_container(self.path, mmap=True)
        self.num_vertices = n
        self.num_edges = m
        named = {name: arr for name, _, arr in blocks}
        try:
            self.canon_src = named["src"]
            self.canon_dst = named["dst"]
            self.psw_src = named["psw_src"]
            self.psw_dst = named["psw_dst"]
            self.psw_eid = named["psw_eid"]
            self.out_degrees = named["out_degrees"]
            # The small index arrays are copied into private memory: they
            # are consulted constantly and must survive release_pages().
            self.bounds = np.asarray(named["bounds"]).copy()
            self.shard_offsets = np.asarray(named["shard_offsets"]).copy()
            window_flat = np.asarray(named["window_index"]).copy()
        except KeyError as exc:
            raise ValueError(f"{self.path}: not a shard store (missing block {exc})") from None
        self.num_intervals = int(self.bounds.size - 1)
        self.window_index = window_flat.reshape(self.num_intervals, self.num_intervals + 1)
        self._runner = None

    # -- construction ----------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: DiGraph,
        path: str | os.PathLike,
        num_intervals: int,
    ) -> "ShardStore":
        """Preprocess ``graph`` into a shard store at ``path``."""
        if num_intervals < 1:
            raise ValueError("num_intervals must be >= 1")
        n, m = graph.num_vertices, graph.num_edges
        k = int(num_intervals)
        bounds = np.linspace(0, n, k + 1).astype(np.int64)
        src = np.asarray(graph.edge_src, dtype=np.int64)
        dst = np.asarray(graph.edge_dst, dtype=np.int64)
        shard_id = np.searchsorted(bounds, dst, side="right") - 1
        # Shard-major, source-sorted, canonical-id tie-break: ascending
        # canonical ids within every (shard, source) group.
        perm = np.lexsort((np.arange(m), src, shard_id))
        psw_src = src[perm]
        psw_dst = dst[perm]
        shard_offsets = np.searchsorted(shard_id[perm], np.arange(k + 1)).astype(np.int64)
        window_index = np.empty((k, k + 1), dtype=np.int64)
        for j in range(k):
            a, b = shard_offsets[j], shard_offsets[j + 1]
            window_index[j] = a + np.searchsorted(psw_src[a:b], bounds)
        write_container(
            path,
            num_vertices=n,
            num_edges=m,
            arrays=[
                ("src", KIND_TOPO_SRC, src),
                ("dst", KIND_TOPO_DST, dst),
                ("psw_src", KIND_EDGE, psw_src),
                ("psw_dst", KIND_EDGE, psw_dst),
                ("psw_eid", KIND_EDGE, perm.astype(np.int64)),
                ("out_degrees", KIND_VERTEX, graph.out_degrees().astype(np.int64)),
                ("bounds", KIND_META, bounds),
                ("shard_offsets", KIND_META, shard_offsets),
                ("window_index", KIND_META, window_index.reshape(-1)),
            ],
        )
        return cls(path)

    @classmethod
    def open(cls, path: str | os.PathLike) -> "ShardStore":
        return cls(path)

    # -- interval access -------------------------------------------------
    def interval(self, k: int) -> tuple[int, int]:
        """Vertex range ``[lo, hi)`` of interval ``k``."""
        return int(self.bounds[k]), int(self.bounds[k + 1])

    def interval_ranges(self, k: int) -> list[tuple[int, int]]:
        """Slot ranges covering every edge incident to interval ``k``:
        the full shard ``k`` (in-edges) plus one sliding window from
        every other shard (out-edges).  Ranges are disjoint, ascending,
        and non-empty."""
        ranges: list[tuple[int, int]] = []
        for j in range(self.num_intervals):
            if j == k:
                lo, hi = int(self.shard_offsets[j]), int(self.shard_offsets[j + 1])
            else:
                lo, hi = int(self.window_index[j, k]), int(self.window_index[j, k + 1])
            if hi > lo:
                ranges.append((lo, hi))
        return ranges

    def graph_view(self) -> StoreGraphView:
        return StoreGraphView(self)

    def nondet_runner(self):
        """The (cached) out-of-core nondeterministic runner for this
        store.  Cached so supervised restarts resume against the same
        live scratch state."""
        if self._runner is None:
            from ..engine.nondet_outofcore import OutOfCoreNondetRunner

            self._runner = OutOfCoreNondetRunner(self)
        return self._runner

    # -- hygiene ---------------------------------------------------------
    def release_pages(self) -> None:
        """Advise the kernel to drop resident pages of the big mmaps —
        keeps measured RSS bounded between interval sweeps."""
        import mmap as _mmap

        for arr in (self.canon_src, self.canon_dst, self.psw_src,
                    self.psw_dst, self.psw_eid, self.out_degrees):
            mm = getattr(arr, "_mmap", None)
            if mm is not None and hasattr(mm, "madvise"):
                try:
                    mm.madvise(_mmap.MADV_DONTNEED)
                except (ValueError, OSError):  # closed or unsupported
                    pass

    def validate(self) -> None:
        """PSW invariants, raising :class:`ValueError` on violation."""
        n, m, k = self.num_vertices, self.num_edges, self.num_intervals
        eid = np.asarray(self.psw_eid)
        if not np.array_equal(np.sort(eid), np.arange(m)):
            raise ValueError("psw_eid is not a permutation of the canonical ids")
        if not (np.array_equal(self.psw_src, np.asarray(self.canon_src)[eid])
                and np.array_equal(self.psw_dst, np.asarray(self.canon_dst)[eid])):
            raise ValueError("shard-major endpoints disagree with canonical topology")
        if self.shard_offsets[0] != 0 or self.shard_offsets[-1] != m:
            raise ValueError("shard_offsets do not cover the edge list")
        for j in range(k):
            a, b = int(self.shard_offsets[j]), int(self.shard_offsets[j + 1])
            lo, hi = self.interval(j)
            d = self.psw_dst[a:b]
            if d.size and not np.all((d >= lo) & (d < hi)):
                raise ValueError(f"shard {j} holds a destination outside [{lo}, {hi})")
            s = self.psw_src[a:b]
            if s.size and np.any(np.diff(s) < 0):
                raise ValueError(f"shard {j} is not source-sorted")
            e = eid[a:b]
            if e.size and np.any(np.diff(e) <= 0):
                raise ValueError(f"shard {j} canonical ids are not strictly ascending")
            if self.window_index[j, 0] != a or self.window_index[j, k] != b:
                raise ValueError(f"shard {j} window index does not span the shard")
            if np.any(np.diff(self.window_index[j]) < 0):
                raise ValueError(f"shard {j} window index is not monotone")
            for t in range(k):
                wa, wb = int(self.window_index[j, t]), int(self.window_index[j, t + 1])
                w = self.psw_src[wa:wb]
                tlo, thi = self.interval(t)
                if w.size and not np.all((w >= tlo) & (w < thi)):
                    raise ValueError(f"window ({j}, {t}) holds a source outside [{tlo}, {thi})")
        deg = np.bincount(np.asarray(self.canon_src), minlength=n).astype(np.int64) \
            if m else np.zeros(n, dtype=np.int64)
        if not np.array_equal(deg, np.asarray(self.out_degrees)):
            raise ValueError("stored out_degrees disagree with topology")


@dataclass
class IOStats:
    """Bytes moved by an out-of-core execution (8-byte values assumed).

    ``seconds`` is wall time spent inside pread/pwrite calls
    (:class:`~repro.engine.nondet_outofcore.FileArray` accumulates it);
    the phase profiler re-assigns it from the enclosing compute phase to
    ``shard_io`` so the per-iteration phase breakdown separates I/O from
    kernel time.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    interval_loads: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "interval_loads": self.interval_loads,
            "seconds": self.seconds,
        }


class OutOfCoreRunner:
    """Interval-by-interval deterministic execution over a sharded graph.

    Semantics are exactly the deterministic (Gauss–Seidel) engine's:
    within an iteration, intervals execute in order and vertices inside
    an interval in ascending label order, with immediate visibility —
    the sequential composition of intervals *is* the global sequential
    sweep, so results are bit-identical to the in-memory engine (a test
    asserts this).  What differs is the access pattern: only the edge
    values incident to the current interval are considered resident, and
    :class:`IOStats` accounts the traffic.
    """

    def __init__(self, sharded: ShardedGraph):
        self.sharded = sharded
        self.io = IOStats()

    def run(
        self,
        program: VertexProgram,
        config: EngineConfig | None = None,
    ) -> RunResult:
        config = config or EngineConfig()
        graph = self.sharded.graph
        state = program.make_state(graph)
        edge_fields = state.edge_field_names

        class _DirectStore:
            def __init__(self, st: State):
                self._edges = {f: st.edge(f) for f in edge_fields}

            def read(self, vid, eid, field):
                return self._edges[field][eid]

            def write(self, vid, eid, field, value):
                self._edges[field][eid] = value

        store = _DirectStore(state)
        frontier = initial_frontier(program, graph)
        stats: list[IterationStats] = []
        iteration = 0
        converged = False
        value_bytes = 8 * max(1, len(edge_fields))
        while iteration < config.max_iterations:
            if not frontier:
                converged = True
                break
            active = frontier.as_set()
            next_schedule: set[int] = set()
            reads = writes = updates = 0
            for k, (lo, hi) in enumerate(self.sharded.intervals):
                chosen = sorted(v for v in active if lo <= v < hi)
                if not chosen:
                    continue
                # Load the interval's memory window: its shard plus one
                # sliding window per shard.
                window_eids = self.sharded.interval_edge_ids(k)
                self.io.interval_loads += 1
                self.io.bytes_read += int(window_eids.size) * value_bytes
                for vid in chosen:
                    ctx = UpdateContext(vid, graph, state, store, next_schedule)
                    program.update(ctx)
                    reads += ctx.n_edge_reads
                    writes += ctx.n_edge_writes
                    updates += 1
                # Write the window back.
                self.io.bytes_written += int(window_eids.size) * value_bytes
            stats.append(
                IterationStats(
                    iteration=iteration,
                    num_active=len(active),
                    updates_per_thread=[updates],
                    reads_per_thread=[reads],
                    writes_per_thread=[writes],
                )
            )
            frontier = Frontier(next_schedule)
            iteration += 1
        # At-cap accounting: converged stays False unless the confirming
        # empty-frontier check at the top of an iteration ran (see
        # tests/test_convergence_conformance.py).

        result = RunResult(
            program=program,
            state=state,
            mode="deterministic",
            converged=converged,
            num_iterations=iteration,
            iterations=stats,
            config=config,
            extra={"io": self.io.as_dict(), "num_shards": self.sharded.num_shards},
        )
        return result
