"""GraphChi-style shards and Parallel Sliding Windows (PSW).

The paper's substrate is GraphChi, whose defining mechanism is the
Parallel Sliding Windows disk layout (Kyrola et al., OSDI'12): vertices
are split into ``K`` execution **intervals**; shard ``k`` holds every
edge whose *destination* lies in interval ``k``, sorted by source.
Processing interval ``k`` then needs shard ``k`` (the in-edges of the
interval) plus one sequential *sliding window* from each other shard
(the out-edges of the interval, which are contiguous there thanks to
the source sort) — ``K`` mostly-sequential reads instead of random I/O.

The paper loads its graphs fully in memory and explicitly excludes I/O
time from Fig. 3, so this module plays two roles here:

* a faithful storage substrate (:class:`ShardedGraph` with on-disk
  persistence via :mod:`repro.storage.binfmt`), with the PSW invariants
  property-tested;
* :class:`OutOfCoreRunner`, which executes the *deterministic*
  engine interval-by-interval, loading only one interval's subgraph
  worth of edge values at a time and accounting the bytes moved — the
  memory-footprint story of "large-scale graph computation on just a
  PC", kept separate from the racy engines exactly as the paper keeps
  I/O out of its measurements.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..graph import DiGraph
from ..engine.config import EngineConfig
from ..engine.frontier import Frontier, initial_frontier
from ..engine.program import UpdateContext, VertexProgram
from ..engine.result import IterationStats, RunResult
from ..engine.state import State
from .binfmt import load_graph, save_graph

__all__ = ["Shard", "ShardedGraph", "OutOfCoreRunner", "IOStats"]


@dataclass(frozen=True)
class Shard:
    """Edges whose destination falls in one vertex interval, sorted by src."""

    index: int
    interval: tuple[int, int]  #: [lo, hi) destination vertex range
    src: np.ndarray
    dst: np.ndarray
    eid: np.ndarray  #: edge ids in the parent graph

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    def window(self, lo: int, hi: int) -> np.ndarray:
        """Edge ids whose *source* lies in ``[lo, hi)`` — the sliding
        window this shard contributes when interval ``[lo, hi)`` runs."""
        left = np.searchsorted(self.src, lo, side="left")
        right = np.searchsorted(self.src, hi, side="left")
        return self.eid[left:right]


class ShardedGraph:
    """A graph partitioned into PSW shards."""

    def __init__(self, graph: DiGraph, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        n = graph.num_vertices
        self._graph = graph
        self.num_shards = int(num_shards)
        # Equal-width vertex intervals (GraphChi balances by edge count;
        # equal width keeps the invariants simple and testable).
        bounds = np.linspace(0, n, num_shards + 1).astype(np.int64)
        self.intervals = [
            (int(bounds[k]), int(bounds[k + 1])) for k in range(num_shards)
        ]
        src, dst = graph.edge_src, graph.edge_dst
        self.shards: list[Shard] = []
        for k, (lo, hi) in enumerate(self.intervals):
            mask = (dst >= lo) & (dst < hi)
            eids = np.nonzero(mask)[0].astype(np.int64)
            order = np.argsort(src[eids], kind="stable")
            eids = eids[order]
            self.shards.append(
                Shard(
                    index=k,
                    interval=(lo, hi),
                    src=src[eids].copy(),
                    dst=dst[eids].copy(),
                    eid=eids,
                )
            )

    @property
    def graph(self) -> DiGraph:
        return self._graph

    def validate(self) -> None:
        """PSW invariants: shards partition the edges; sources sorted;
        every window query is consistent."""
        seen = np.concatenate([s.eid for s in self.shards]) if self.shards else np.array([])
        assert np.array_equal(np.sort(seen), np.arange(self._graph.num_edges))
        for s in self.shards:
            lo, hi = s.interval
            assert np.all((s.dst >= lo) & (s.dst < hi))
            assert np.all(np.diff(s.src) >= 0)

    def interval_edge_ids(self, k: int) -> np.ndarray:
        """All edge ids incident to interval ``k``'s vertices: its shard
        (in-edges) plus one window from every shard (out-edges)."""
        lo, hi = self.intervals[k]
        pieces = [self.shards[k].eid]
        for s in self.shards:
            pieces.append(s.window(lo, hi))
        return np.unique(np.concatenate(pieces))

    # -- persistence -----------------------------------------------------
    def save(self, directory: str | os.PathLike) -> None:
        """Persist each shard as one binary file plus a manifest."""
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "manifest.txt"), "w", encoding="utf-8") as fh:
            fh.write(f"{self._graph.num_vertices} {self._graph.num_edges} {self.num_shards}\n")
            for lo, hi in self.intervals:
                fh.write(f"{lo} {hi}\n")
        for s in self.shards:
            sub = DiGraph(self._graph.num_vertices, s.src, s.dst)
            save_graph(
                sub,
                os.path.join(directory, f"shard-{s.index}.bin"),
                edge_arrays={"parent_eid": _reorder_for(sub, s)},
            )

    @staticmethod
    def load(directory: str | os.PathLike) -> "ShardedGraph":
        """Rebuild the sharded graph from :meth:`save` output."""
        directory = os.fspath(directory)
        with open(os.path.join(directory, "manifest.txt"), "r", encoding="utf-8") as fh:
            n, m, k = (int(x) for x in fh.readline().split())
            intervals = [tuple(int(x) for x in fh.readline().split()) for _ in range(k)]
        src_parts, dst_parts = [], []
        for idx in range(k):
            sub, _, edge_arrays = load_graph(os.path.join(directory, f"shard-{idx}.bin"))
            src_parts.append(sub.edge_src)
            dst_parts.append(sub.edge_dst)
        src = np.concatenate(src_parts) if src_parts else np.array([], dtype=np.int64)
        dst = np.concatenate(dst_parts) if dst_parts else np.array([], dtype=np.int64)
        graph = DiGraph(n, src, dst)
        if graph.num_edges != m:
            raise ValueError(f"{directory}: manifest says {m} edges, shards held {graph.num_edges}")
        sharded = ShardedGraph(graph, k)
        if sharded.intervals != [tuple(iv) for iv in intervals]:
            raise ValueError(f"{directory}: manifest intervals do not match")
        return sharded


def _reorder_for(sub: DiGraph, shard: Shard) -> np.ndarray:
    """Map the sub-graph's canonical edge order back to parent edge ids."""
    order = np.lexsort((shard.dst, shard.src))
    return shard.eid[order].astype(np.int64)


@dataclass
class IOStats:
    """Bytes moved by an out-of-core execution (8-byte values assumed)."""

    bytes_read: int = 0
    bytes_written: int = 0
    interval_loads: int = 0

    def as_dict(self) -> dict:
        return {
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "interval_loads": self.interval_loads,
        }


class OutOfCoreRunner:
    """Interval-by-interval deterministic execution over a sharded graph.

    Semantics are exactly the deterministic (Gauss–Seidel) engine's:
    within an iteration, intervals execute in order and vertices inside
    an interval in ascending label order, with immediate visibility —
    the sequential composition of intervals *is* the global sequential
    sweep, so results are bit-identical to the in-memory engine (a test
    asserts this).  What differs is the access pattern: only the edge
    values incident to the current interval are considered resident, and
    :class:`IOStats` accounts the traffic.
    """

    def __init__(self, sharded: ShardedGraph):
        self.sharded = sharded
        self.io = IOStats()

    def run(
        self,
        program: VertexProgram,
        config: EngineConfig | None = None,
    ) -> RunResult:
        config = config or EngineConfig()
        graph = self.sharded.graph
        state = program.make_state(graph)
        edge_fields = state.edge_field_names

        class _DirectStore:
            def __init__(self, st: State):
                self._edges = {f: st.edge(f) for f in edge_fields}

            def read(self, vid, eid, field):
                return self._edges[field][eid]

            def write(self, vid, eid, field, value):
                self._edges[field][eid] = value

        store = _DirectStore(state)
        frontier = initial_frontier(program, graph)
        stats: list[IterationStats] = []
        iteration = 0
        converged = False
        value_bytes = 8 * max(1, len(edge_fields))
        while iteration < config.max_iterations:
            if not frontier:
                converged = True
                break
            active = frontier.as_set()
            next_schedule: set[int] = set()
            reads = writes = updates = 0
            for k, (lo, hi) in enumerate(self.sharded.intervals):
                chosen = sorted(v for v in active if lo <= v < hi)
                if not chosen:
                    continue
                # Load the interval's memory window: its shard plus one
                # sliding window per shard.
                window_eids = self.sharded.interval_edge_ids(k)
                self.io.interval_loads += 1
                self.io.bytes_read += int(window_eids.size) * value_bytes
                for vid in chosen:
                    ctx = UpdateContext(vid, graph, state, store, next_schedule)
                    program.update(ctx)
                    reads += ctx.n_edge_reads
                    writes += ctx.n_edge_writes
                    updates += 1
                # Write the window back.
                self.io.bytes_written += int(window_eids.size) * value_bytes
            stats.append(
                IterationStats(
                    iteration=iteration,
                    num_active=len(active),
                    updates_per_thread=[updates],
                    reads_per_thread=[reads],
                    writes_per_thread=[writes],
                )
            )
            frontier = Frontier(next_schedule)
            iteration += 1
        else:
            converged = not frontier

        result = RunResult(
            program=program,
            state=state,
            mode="deterministic",
            converged=converged,
            num_iterations=iteration,
            iterations=stats,
            config=config,
            extra={"io": self.io.as_dict(), "num_shards": self.sharded.num_shards},
        )
        return result
