"""Shared-memory array pools for the multi-process execution backend.

One :class:`SharedArrayPool` maps a set of named NumPy arrays onto a
single POSIX shared-memory segment (``multiprocessing.shared_memory``),
so a master process and its workers see the *same physical pages* —
zero-copy CSR topology and state arrays, exactly the substrate the
paper's racy threads share through the cache-coherence protocol.

Design points:

* **One segment, many arrays.**  An :class:`ArrayLayout` computes an
  8-byte-aligned offset table once; master and workers both derive
  their views from it, so there is exactly one name to create, attach,
  and unlink per run instead of one per array.
* **Leak-proof by construction.**  The creating process owns the
  segment: :meth:`SharedArrayPool.unlink` is idempotent and runs from
  ``close()``/``__exit__``/GC, and the stdlib ``resource_tracker``
  backstops a SIGKILLed master.  Attaching processes deliberately do
  *not* register with the tracker (Python < 3.13 registers attachments
  too, which produces spurious "leaked shared_memory" warnings and
  double-unlink races at interpreter shutdown — gh-82300); on 3.13+
  ``track=False`` does the same thing officially.
* **Views before maps.**  NumPy views pin the underlying ``mmap``;
  :meth:`release_views` drops them so ``close()`` can unmap without
  ``BufferError``.
"""

from __future__ import annotations

import contextlib
import contextvars
import glob as _glob
import os
import re
import secrets
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "ArrayLayout",
    "SharedArrayPool",
    "SEGMENT_PREFIX",
    "segment_namespace",
    "current_segment_namespace",
    "sweep_orphaned_segments",
]

#: Every segment this module creates carries this name prefix, so tests
#: (and operators) can audit ``/dev/shm`` for leaks with one glob.
SEGMENT_PREFIX = "repro-pool-"

_ALIGN = 8

#: Where POSIX shared memory is observable as files (Linux).  On other
#: platforms the sweep degrades to a no-op — segments are still unlinked
#: by their owners; only crash-orphan recovery loses observability.
SHM_DIR = "/dev/shm"

_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9._-]{1,80}$")

#: The per-job/service segment namespace.  A context variable, so each
#: scheduler worker *thread* scopes the segments of the job it is
#: running without plumbing a name through every engine layer:
#: ``SharedArrayPool.create`` picks it up when minting a default name.
_namespace: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_shm_namespace", default=None)


def current_segment_namespace() -> str | None:
    """The namespace new segments are minted under in this context."""
    return _namespace.get()


@contextlib.contextmanager
def segment_namespace(namespace: str | None):
    """Scope default segment names to ``SEGMENT_PREFIX<namespace>-…``.

    The service scheduler wraps each job's run in
    ``segment_namespace(f"{service_ns}-{job_id}")`` so every segment a
    job creates — the parallel backend's pool, the out-of-core worker
    mirrors — carries the job id in its ``/dev/shm`` name.  That is what
    makes the startup orphan sweep safe: a segment name proves which job
    (and which service) it belonged to.
    """
    if namespace is not None and not _NAMESPACE_RE.match(namespace):
        raise ValueError(
            f"invalid segment namespace {namespace!r}: need 1-80 chars of "
            "[A-Za-z0-9._-] (it becomes part of a /dev/shm file name)")
    token = _namespace.set(namespace)
    try:
        yield namespace
    finally:
        _namespace.reset(token)


def _default_segment_name() -> str:
    ns = _namespace.get()
    scope = f"{ns}-" if ns else ""
    return SEGMENT_PREFIX + scope + secrets.token_hex(8)


def sweep_orphaned_segments(namespace: str, *, live: tuple[str, ...] | list[str] = ()) -> list[str]:
    """Unlink leftover segments of a dead service/job generation.

    Removes every ``/dev/shm`` entry named
    ``SEGMENT_PREFIX<namespace>-…`` that does not belong to a namespace
    listed in ``live`` (full namespaces, e.g. ``"svc1a2b-j0003"``).
    Returns the removed segment names.  A SIGKILL'd master cannot run
    its unlink path; the stdlib resource tracker usually catches the
    fall, but the sweep is the deterministic backstop the service runs
    at startup — scoped to *its own* namespace so concurrent services
    (or unrelated runs, which carry no namespace) are never touched.
    """
    removed: list[str] = []
    if not os.path.isdir(SHM_DIR):
        return removed
    base = SEGMENT_PREFIX + namespace + "-"
    keep = tuple(SEGMENT_PREFIX + ns + "-" for ns in live)
    for path in sorted(_glob.glob(os.path.join(SHM_DIR, base + "*"))):
        name = os.path.basename(path)
        if any(name.startswith(prefix) for prefix in keep):
            continue
        try:
            os.unlink(path)
            removed.append(name)
        except FileNotFoundError:
            pass
    return removed


@dataclass(frozen=True)
class ArrayLayout:
    """Immutable offset table: ``name -> (offset, shape, dtype-str)``.

    Built once by the master and shipped to workers (it pickles small),
    so both sides derive identical views of the one segment.
    """

    entries: dict = field(default_factory=dict)
    total_bytes: int = 0

    @classmethod
    def build(cls, specs: dict[str, tuple[tuple[int, ...], object]]) -> "ArrayLayout":
        """Lay out ``{name: (shape, dtype)}`` with 8-byte alignment."""
        entries: dict[str, tuple[int, tuple[int, ...], str]] = {}
        offset = 0
        for name, (shape, dtype) in specs.items():
            dt = np.dtype(dtype)
            nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
            entries[name] = (offset, tuple(int(s) for s in shape), dt.str)
            offset += nbytes
        # A zero-byte segment is invalid; keep at least one page's worth.
        return cls(entries=entries, total_bytes=max(offset, _ALIGN))

    def names(self) -> tuple[str, ...]:
        return tuple(self.entries)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    Registering must be *suppressed*, not undone: the tracker's cache is
    a set, so N attachers registering the same name and then each
    unregistering it leaves N−1 unbalanced unregisters that surface as
    ``KeyError`` noise in the tracker process at shutdown.
    """
    try:  # Python >= 3.13
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig


class SharedArrayPool:
    """A named shared-memory segment plus its array views.

    ``SharedArrayPool.create(layout)`` in the master; workers call
    ``SharedArrayPool.attach(name, layout)``.  Either side reads arrays
    through :meth:`array` (views are cached).  The owner's ``close()``
    also unlinks; an attacher's only unmaps.
    """

    def __init__(self, shm: shared_memory.SharedMemory, layout: ArrayLayout,
                 *, owner: bool):
        self._shm = shm
        self.layout = layout
        self._owner = owner
        # Ownership is per-process: a fork()ed child inherits this object
        # but must never unlink the segment when *its* interpreter exits.
        self._owner_pid = os.getpid() if owner else -1
        self._views: dict[str, np.ndarray] = {}
        self._closed = False

    # -- construction ----------------------------------------------------
    @classmethod
    def create(cls, layout: ArrayLayout, *, name: str | None = None) -> "SharedArrayPool":
        name = name or _default_segment_name()
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=layout.total_bytes)
        pool = cls(shm, layout, owner=True)
        # Deterministic start state: zero every byte once, at creation.
        shm.buf[:] = b"\x00" * len(shm.buf)
        return pool

    @classmethod
    def attach(cls, name: str, layout: ArrayLayout) -> "SharedArrayPool":
        return cls(_attach_untracked(name), layout, owner=False)

    # -- access ----------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    def array(self, name: str) -> np.ndarray:
        """The live view of array ``name`` (same pages in every process)."""
        view = self._views.get(name)
        if view is None:
            offset, shape, dtype = self.layout.entries[name]
            view = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=self._shm.buf, offset=offset)
            self._views[name] = view
        return view

    def arrays(self, prefix: str) -> dict[str, np.ndarray]:
        """All views whose name starts with ``prefix``, keyed by the rest."""
        return {
            name[len(prefix):]: self.array(name)
            for name in self.layout.entries
            if name.startswith(prefix)
        }

    # -- lifecycle -------------------------------------------------------
    def release_views(self) -> None:
        """Drop every NumPy view so the mapping can be closed."""
        self._views.clear()

    def unlink(self) -> None:
        """Remove the segment name (idempotent; owner only).

        The pages stay valid for processes that still map them; the name
        disappears immediately, so a crashed run never strands a
        ``/dev/shm`` entry past this call.
        """
        if not self._owner or os.getpid() != self._owner_pid:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def close(self) -> None:
        """Unmap (and, for the owner, unlink) the segment. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.release_views()
        if self._owner:
            self.unlink()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external view
            # A still-exported view pins the map; the name is already
            # unlinked above, so the segment cannot leak past process
            # exit either way.
            pass

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
