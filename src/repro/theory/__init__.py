"""Executable theory: the paper's §IV made checkable."""

from .chain import ConvergenceChain, trace_chain
from .explore import ExplorationReport, explore_schedules
from .eligibility import (
    EligibilityReport,
    Verdict,
    audit_run,
    check_delta_program,
    check_program,
    check_push_program,
    check_traits,
    is_accumulative,
    probe_delta_algebra,
)
from .monotonic import MonotonicityProbe, probe_monotonicity
from .speed import SpeedPoint, SpeedReport, measure_convergence_speed

__all__ = [
    "ConvergenceChain",
    "trace_chain",
    "ExplorationReport",
    "explore_schedules",
    "EligibilityReport",
    "Verdict",
    "audit_run",
    "check_delta_program",
    "check_program",
    "check_push_program",
    "check_traits",
    "is_accumulative",
    "probe_delta_algebra",
    "MonotonicityProbe",
    "probe_monotonicity",
    "SpeedPoint",
    "SpeedReport",
    "measure_convergence_speed",
]
