"""Convergence-chain tracing: the proof object of Theorem 1, made concrete.

Theorem 1's proof argues that for any vertex ``v`` that takes ``k``
update repetitions to reach its final value under the synchronous model,
"there must exist a series of vertices v_0, v_1, ..., v_{k-1}, v forming
a chain" along which the computing result is passed one hop per
iteration.  This module extracts such a witness chain from an actual
synchronous run: it snapshots the primary result every iteration,
identifies when each vertex last changed, and walks backwards through
in-neighbours whose changes are one iteration older.

The extracted chain is a *witness*, not a uniqueness claim — several
chains may exist; we return one, preferring the in-neighbour with the
smallest label for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import DiGraph
from ..engine.config import EngineConfig
from ..engine.program import VertexProgram
from ..engine.runner import run

__all__ = ["ConvergenceChain", "trace_chain"]


@dataclass(frozen=True)
class ConvergenceChain:
    """A witness information-flow chain ending at ``target``."""

    target: int
    vertices: tuple[int, ...]  #: chain in propagation order, ends at target
    change_iterations: tuple[int, ...]  #: iteration at which each link changed
    total_iterations: int  #: length of the synchronous run

    @property
    def length(self) -> int:
        return len(self.vertices)

    def render(self) -> str:
        if self.length <= 1:
            return f"vertex {self.target}: converged without upstream propagation"
        hops = " -> ".join(str(v) for v in self.vertices)
        return (
            f"vertex {self.target}: result propagated along {hops} "
            f"(changes at iterations {list(self.change_iterations)})"
        )


def trace_chain(
    program: VertexProgram,
    graph: DiGraph,
    target: int,
    *,
    config: EngineConfig | None = None,
) -> ConvergenceChain:
    """Trace a Theorem 1 witness chain for ``target`` under BSP execution.

    Runs the program synchronously, recording per-iteration snapshots of
    the primary result, then walks backwards from ``target``'s last
    change through in-neighbours that changed exactly one iteration
    earlier.
    """
    if not 0 <= target < graph.num_vertices:
        raise ValueError(f"target {target} out of range [0, {graph.num_vertices})")

    snapshots: list[np.ndarray] = []

    def observer(iteration: int, state, next_schedule) -> None:
        snapshots.append(np.array(program.result(state), dtype=np.float64, copy=True))

    result = run(program, graph, mode="sync", config=config, observer=observer)
    total = result.num_iterations
    if not snapshots:
        return ConvergenceChain(target, (target,), (), total)

    # changed[i] = boolean mask of vertices whose value changed during
    # iteration i (comparing to the previous snapshot / initial state).
    initial = np.array(program.result(program.make_state(graph)), dtype=np.float64)
    changed: list[np.ndarray] = []
    prev = initial
    for snap in snapshots:
        with np.errstate(invalid="ignore"):
            delta = snap != prev
        # Treat inf -> inf as unchanged, NaN transitions as changed.
        changed.append(np.asarray(delta))
        prev = snap

    def last_change(v: int) -> int:
        for i in range(len(changed) - 1, -1, -1):
            if changed[i][v]:
                return i
        return -1

    chain: list[int] = [target]
    iters: list[int] = []
    t = last_change(target)
    if t >= 0:
        iters.append(t)
    cur = target
    while t > 0:
        predecessors = [
            int(u) for u in graph.in_neighbors(cur).tolist() if changed[t - 1][u]
        ]
        if not predecessors:
            break
        nxt = min(predecessors)  # smallest label: reproducible witness
        chain.append(nxt)
        t -= 1
        iters.append(t)
        cur = nxt

    chain.reverse()
    iters.reverse()
    return ConvergenceChain(
        target=target,
        vertices=tuple(chain),
        change_iterations=tuple(iters),
        total_iterations=total,
    )
