"""Executable form of the paper's sufficient conditions (§IV).

This module answers the paper's title question for a concrete program:

* **Theorem 1** — if the algorithm converges under the synchronous model
  and its nondeterministic execution produces only read–write conflicts
  on edges, it converges nondeterministically.  (The proof's closing
  remark extends the premise to algorithms that converge under a
  deterministic asynchronous schedule; :func:`check_traits` honours the
  extension and labels it as such.)
* **Theorem 2** — if the algorithm converges under deterministic
  asynchronous execution and satisfies the monotonicity property, it
  converges nondeterministically even under write–write conflicts,
  recovering from corrupted intermediate results.

Beyond convergence, the report carries the paper's §IV/§V-C observation
about *results*: algorithms with absolute convergence conditions produce
the same final results as deterministic execution, while approximate
(fixed-point, ε-threshold) algorithms exhibit run-to-run variation.

:func:`audit_run` closes the loop between declaration and observation:
it cross-checks a finished run's conflict log against the traits the
verdict was based on, flagging e.g. an "eligible under Theorem 1"
algorithm that in fact produced write–write conflicts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..engine.push import CombineOp
from ..engine.result import RunResult
from ..engine.traits import AlgorithmTraits, ConflictProfile, ConvergenceKind

__all__ = [
    "Verdict",
    "EligibilityReport",
    "check_traits",
    "check_program",
    "check_push_program",
    "check_delta_program",
    "probe_delta_algebra",
    "is_accumulative",
    "audit_run",
]


class Verdict(enum.Enum):
    """Outcome of applying the sufficient conditions."""

    ELIGIBLE_THEOREM_1 = "eligible (Theorem 1)"
    ELIGIBLE_THEOREM_2 = "eligible (Theorem 2)"
    ELIGIBLE_PUSH = "eligible (push-mode condition)"
    ELIGIBLE_DELTA = "eligible (delta-accumulative condition)"
    NOT_ESTABLISHED = "not established"

    @property
    def eligible(self) -> bool:
        return self is not Verdict.NOT_ESTABLISHED


@dataclass(frozen=True)
class EligibilityReport:
    """The answer, with its reasoning, for one algorithm."""

    traits: AlgorithmTraits
    verdict: Verdict
    reasons: tuple[str, ...]
    #: True when the paper predicts nondeterministic runs reproduce the
    #: deterministic final results exactly (absolute convergence).
    results_deterministic: bool
    warnings: tuple[str, ...] = field(default=())

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"Algorithm: {self.traits.name} ({self.traits.family or 'unclassified'})"]
        lines.append(f"Verdict:   {self.verdict.value}")
        for r in self.reasons:
            lines.append(f"  - {r}")
        if self.verdict.eligible:
            lines.append(
                "Results:   identical to deterministic execution"
                if self.results_deterministic
                else "Results:   expect run-to-run variation (approximate convergence)"
            )
        for w in self.warnings:
            lines.append(f"  ! {w}")
        return "\n".join(lines)


def check_traits(traits: AlgorithmTraits) -> EligibilityReport:
    """Apply Theorems 1 and 2 to declared traits."""
    reasons: list[str] = []
    warnings: list[str] = []
    verdict = Verdict.NOT_ESTABLISHED

    rw_only = traits.conflict_profile in (ConflictProfile.NONE, ConflictProfile.READ_WRITE)

    if rw_only and traits.converges_synchronously:
        verdict = Verdict.ELIGIBLE_THEOREM_1
        reasons.append(
            "converges under the synchronous model and nondeterministic "
            "execution raises only read-write conflicts (Theorem 1)"
        )
    elif rw_only and traits.converges_async_deterministic:
        verdict = Verdict.ELIGIBLE_THEOREM_1
        reasons.append(
            "converges under a deterministic asynchronous schedule with only "
            "read-write conflicts (Theorem 1, extended applicability)"
        )
    elif traits.has_write_write and traits.converges_async_deterministic and traits.is_monotone:
        verdict = Verdict.ELIGIBLE_THEOREM_2
        reasons.append(
            "converges under deterministic asynchronous execution and is "
            f"monotone ({traits.monotonicity.value}): write-write conflicts "
            "are tolerated via corruption recovery (Theorem 2)"
        )
    else:
        if traits.has_write_write and not traits.is_monotone:
            reasons.append(
                "produces write-write conflicts but is not monotone: "
                "Theorem 2 does not apply"
            )
        if not traits.converges_synchronously and not traits.converges_async_deterministic:
            reasons.append(
                "converges under neither the synchronous model nor a "
                "deterministic asynchronous schedule: no theorem's premise holds"
            )
        elif not traits.converges_synchronously:
            reasons.append("does not converge under the synchronous model")
        reasons.append(
            "the sufficient conditions of the paper do not cover this "
            "algorithm; nondeterministic execution may or may not converge"
        )

    # Secondary checks — even an eligible WW algorithm can also qualify
    # under Theorem 2's premises for its RW conflicts (informational).
    if (
        verdict is Verdict.ELIGIBLE_THEOREM_1
        and traits.has_write_write
    ):  # pragma: no cover - defensive, unreachable by construction
        warnings.append("write-write profile contradicts a Theorem 1 verdict")

    results_deterministic = (
        verdict.eligible and traits.convergence_kind is ConvergenceKind.ABSOLUTE
    )
    if verdict.eligible and traits.convergence_kind is ConvergenceKind.APPROXIMATE:
        warnings.append(
            "approximate convergence condition: results at convergence vary "
            "from one run to another (paper §V-C); validate the variation is "
            "acceptable for your use (difference-degree analysis)"
        )
    if verdict is Verdict.ELIGIBLE_THEOREM_2:
        warnings.append(
            "Theorem 2 guarantees convergence of the edge/vertex fixed point; "
            "auxiliary non-recomputable outputs (e.g. operation tallies) are "
            "not covered — see EdgeIncrementCounter for a cautionary example"
        )

    return EligibilityReport(
        traits=traits,
        verdict=verdict,
        reasons=tuple(reasons),
        results_deterministic=results_deterministic,
        warnings=tuple(warnings),
    )


def check_program(program) -> EligibilityReport:
    """Convenience: :func:`check_traits` on a program's declared traits."""
    return check_traits(program.traits)


def check_push_program(program) -> EligibilityReport:
    """The push-mode sufficient condition (the paper's future-work item).

    *If a push-mode algorithm converges under a deterministic schedule
    and every accumulator's combine is commutative and associative, and
    combines are applied atomically, then it converges
    nondeterministically*: delivery order cannot change a folded value,
    so Theorem 1's chain argument carries over with "edge value"
    replaced by "accumulator value".  Non-idempotent combines (ADD) get
    a warning — they depend on exactly-once delivery, i.e. on the atomic
    combine; idempotent ones (MIN/MAX) additionally tolerate duplicate
    delivery.
    """
    traits = program.traits
    specs = program.accumulators()
    reasons: list[str] = []
    warnings: list[str] = []

    all_ca = all(spec.op.commutative_associative for spec in specs.values())
    converges = traits.converges_async_deterministic or traits.converges_synchronously
    if converges and all_ca:
        verdict = Verdict.ELIGIBLE_PUSH
        ops = ", ".join(f"{name}:{spec.op.value}" for name, spec in specs.items())
        reasons.append(
            "converges deterministically and every accumulator combine is "
            f"commutative and associative ({ops}): delivery order cannot "
            "change folded values (push-mode condition)"
        )
        non_idem = [n for n, s in specs.items() if not s.op.idempotent]
        if non_idem:
            warnings.append(
                "non-idempotent combine(s) "
                + ", ".join(non_idem)
                + ": correctness requires the atomic combine to deliver every "
                "contribution exactly once — lost updates under "
                "AtomicityPolicy.NONE corrupt the fixed point"
            )
    else:
        verdict = Verdict.NOT_ESTABLISHED
        if not converges:
            reasons.append("no deterministic convergence premise holds")
        if not all_ca:
            reasons.append("an accumulator combine is not commutative-associative")
        reasons.append("the push-mode sufficient condition does not cover this algorithm")

    results_deterministic = (
        verdict.eligible and traits.convergence_kind is ConvergenceKind.ABSOLUTE
    )
    if verdict.eligible and traits.convergence_kind is ConvergenceKind.APPROXIMATE:
        warnings.append(
            "approximate convergence condition: results vary from one run to "
            "another (truncated residuals depend on delivery schedule)"
        )
    return EligibilityReport(
        traits=traits,
        verdict=verdict,
        reasons=tuple(reasons),
        results_deterministic=results_deterministic,
        warnings=tuple(warnings),
    )


def audit_run(result: RunResult) -> list[str]:
    """Cross-check a run's observed conflicts against the declared traits.

    Returns a list of discrepancy messages (empty = consistent).  This is
    the empirical safety net for hand-declared conflict profiles.
    """
    issues: list[str] = []
    traits = result.program.traits
    log = result.conflicts
    if result.mode == "deterministic" and log.total:
        issues.append(
            f"deterministic run logged {log.total} conflicts — engine invariant broken"
        )
    if result.mode == "nondeterministic":
        if traits.conflict_profile is ConflictProfile.NONE and log.total:
            issues.append(
                f"declared conflict-free but observed {log.read_write} read-write "
                f"and {log.write_write} write-write conflicts"
            )
        if (
            traits.conflict_profile is ConflictProfile.READ_WRITE
            and log.write_write
        ):
            issues.append(
                f"declared read-write-only but observed {log.write_write} "
                "write-write conflicts"
            )
    if not result.converged:
        report = check_traits(traits)
        if report.verdict.eligible:
            issues.append(
                f"declared eligible ({report.verdict.value}) but the run did not "
                f"converge within {result.num_iterations} iterations"
            )
    return issues


# ---------------------------------------------------------------------------
# Delta-accumulative condition (Maiter's subclass, PAPERS.md)
# ---------------------------------------------------------------------------

#: Sample values the algebra probes fold over — finite magnitudes across
#: scales plus the extended reals the identity elements live on.
_PROBE_VALUES = (0.0, 1.0, -1.0, 0.5, 3.25, 1e-9, 1e9, float("inf"))


def _probe_graph():
    """A small graph with varied degrees for the gain probes."""
    from ..graph import DiGraph

    return DiGraph(6, [0, 0, 0, 1, 2, 3, 4], [1, 2, 3, 2, 3, 4, 5])


def probe_delta_algebra(kernel, graph=None) -> str | None:
    """Search small inputs for a violation of the accumulative algebra.

    Checks, in order: ⊕ commutativity, associativity, identity; gain
    distributivity over ⊕ (``g(a ⊕ b) == g(a) ⊕ g(b)``); for idempotent
    ⊕, gain monotonicity; for ADD, the declared contraction (per-source
    propagated mass ≤ the certificate).  Returns a concrete witness
    string for the first violation found, or ``None`` — this is the
    "verified against small-graph search" half of the delta verdict,
    and the same search that refutes deliberately broken kernels in the
    test suite.
    """
    import itertools
    import math

    import numpy as np

    op = kernel.op
    ident = op.identity
    close = lambda a, b: (a == b) or math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)

    for a, b in itertools.combinations_with_replacement(_PROBE_VALUES, 2):
        if not close(op.fold(a, b), op.fold(b, a)):
            return (f"⊕ is not commutative: fold({a}, {b}) = {op.fold(a, b)} "
                    f"but fold({b}, {a}) = {op.fold(b, a)}")
    for a, b, c in itertools.combinations_with_replacement(_PROBE_VALUES, 3):
        lhs = op.fold(op.fold(a, b), c)
        rhs = op.fold(a, op.fold(b, c))
        if not (close(lhs, rhs) or (math.isnan(lhs) and math.isnan(rhs))):
            return (f"⊕ is not associative: ({a} ⊕ {b}) ⊕ {c} = {lhs} but "
                    f"{a} ⊕ ({b} ⊕ {c}) = {rhs}")
    for a in _PROBE_VALUES:
        if not close(op.fold(a, ident), a):
            return (f"{ident} is not an identity for ⊕: "
                    f"fold({a}, {ident}) = {op.fold(a, ident)}")

    graph = graph if graph is not None else _probe_graph()
    eids = np.arange(graph.num_edges, dtype=np.int64)
    finite = [v for v in _PROBE_VALUES if math.isfinite(v)]

    def g(vals):
        return kernel.gains(graph, eids, np.full(eids.size, vals, dtype=np.float64))

    for a, b in itertools.combinations(finite, 2):
        lhs = kernel.gains(graph, eids, np.full(eids.size, op.fold(a, b)))
        rhs_a, rhs_b = g(a), g(b)
        rhs = np.minimum(rhs_a, rhs_b) if op is CombineOp.MIN else (
            np.maximum(rhs_a, rhs_b) if op is CombineOp.MAX else rhs_a + rhs_b)
        bad = ~np.isclose(lhs, rhs, rtol=1e-9, atol=1e-12)
        if bad.any():
            e = int(np.flatnonzero(bad)[0])
            return (f"g does not distribute over ⊕ on edge {e}: "
                    f"g({a} ⊕ {b}) = {lhs[e]} but g({a}) ⊕ g({b}) = {rhs[e]}")

    if op.idempotent:
        ordered = sorted(finite)
        for a, b in zip(ordered, ordered[1:]):
            ga, gb = g(a), g(b)
            cmp = (ga <= gb) if op is CombineOp.MIN else (ga >= gb)
            if not cmp.all():
                e = int(np.flatnonzero(~cmp)[0])
                return (f"g is not monotone on edge {e}: {a} ≤ {b} but "
                        f"g({a}) = {ga[e]}, g({b}) = {gb[e]}")
    else:
        factor = kernel.contraction
        out_deg = graph.out_degrees()
        mass = np.abs(g(1.0))
        per_src = np.zeros(graph.num_vertices)
        np.add.at(per_src, graph.edge_src, mass)
        worst = float(per_src.max(initial=0.0))
        if worst > factor * (1.0 + 1e-9):
            v = int(per_src.argmax())
            return (f"contraction certificate {factor} violated: vertex {v} "
                    f"(out-degree {int(out_deg[v])}) propagates total mass "
                    f"{worst} per unit delta")
    return None


def _refusal_witness(program) -> list[str]:
    """Concrete small-graph evidence for a no-kernel refusal."""
    from ..graph import DiGraph

    traits = program.traits
    out: list[str] = []
    if not (traits.converges_synchronously or traits.converges_async_deterministic):
        # Demonstrate, not just declare: run the synchronous model on a
        # triangle and watch it fail to reach any fixed point.
        try:
            from ..engine.runner import run
            from ..engine.config import EngineConfig

            tri = DiGraph(3, [0, 1, 1, 2, 2, 0], [1, 0, 2, 1, 0, 2])
            res = run(type(program)(), tri, mode="sync",
                      config=EngineConfig(max_iterations=16))
            if not res.converged:
                out.append(
                    "witness: a synchronous run on a 3-cycle oscillated "
                    "past 16 iterations — there is no fixed point for an "
                    "accumulator to converge toward")
        except Exception:  # pragma: no cover - probe is best-effort
            pass
    if not traits.monotonicity.is_monotone:
        out.append(
            "no monotone ⊕ can order this program's state trajectory "
            "(monotonicity declared NONE), so committed deltas cannot be "
            "folded without an inverse")
    return out


def check_delta_program(program, *, probe: bool = True) -> EligibilityReport:
    """The delta-accumulative sufficient condition (Maiter, PAPERS.md).

    *If the program has an accumulative formulation ``(⊕, identity,
    g_edge)`` with ⊕ commutative/associative and ``g`` distributing over
    ⊕, and either ⊕ is idempotent with a monotone ``g`` (MIN/MAX class)
    or the gains contract total mass (ADD class), then propagating
    deltas in any delivery order converges to the same fixed point as
    full recomputation* — the accumulation identity ``x = x0 ⊕ Σ deltas``
    makes every interleaving a re-association of one fold.

    With ``probe=True`` (default) the declared algebra is additionally
    verified by small-graph search (:func:`probe_delta_algebra`);
    declared-but-false algebras are refused with the concrete witness.
    """
    from ..engine.nondet_delta import delta_fallback_reasons, resolve_delta_kernel

    traits = program.traits
    structural = delta_fallback_reasons(program)
    if structural:
        reasons = list(structural) + _refusal_witness(program)
        reasons.append("the delta-accumulative condition does not cover "
                       "this algorithm")
        return EligibilityReport(
            traits=traits, verdict=Verdict.NOT_ESTABLISHED,
            reasons=tuple(reasons), results_deterministic=False,
        )

    kernel = resolve_delta_kernel(program)(program)
    if probe:
        witness = probe_delta_algebra(kernel)
        if witness is not None:
            return EligibilityReport(
                traits=traits, verdict=Verdict.NOT_ESTABLISHED,
                reasons=(
                    "the declared accumulative algebra fails small-graph "
                    "verification", witness,
                ),
                results_deterministic=False,
            )

    reasons = [
        f"accumulative formulation verified: ⊕ = {kernel.op.value} is "
        "commutative/associative with identity "
        f"{kernel.op.identity}, and g_edge distributes over ⊕ "
        "(small-graph search found no violation)"
    ]
    warnings: list[str] = []
    if kernel.op.idempotent:
        reasons.append(
            "idempotent ⊕ with monotone gains: any delivery order — "
            "including duplicate delivery — re-associates to the same fold "
            "(Theorem 2's monotone recovery, in delta form)")
    else:
        reasons.append(
            f"gain mass contracts by {kernel.contraction} per hop: the "
            "residual Σ|Δ| vanishes geometrically under any schedule")
        warnings.append(
            "non-idempotent ⊕ (ADD) relies on exactly-once delivery of "
            "every delta; the engine's fold-at commit provides it, but "
            "results carry threshold-truncation noise (approximate "
            "convergence)")
    results_deterministic = (
        kernel.op.idempotent
        and traits.convergence_kind is ConvergenceKind.ABSOLUTE
    )
    return EligibilityReport(
        traits=traits, verdict=Verdict.ELIGIBLE_DELTA,
        reasons=tuple(reasons), results_deterministic=results_deterministic,
        warnings=tuple(warnings),
    )


def is_accumulative(program) -> bool:
    """Convenience: does ``program`` pass the delta condition?"""
    return check_delta_program(program).verdict.eligible
