"""Executable form of the paper's sufficient conditions (§IV).

This module answers the paper's title question for a concrete program:

* **Theorem 1** — if the algorithm converges under the synchronous model
  and its nondeterministic execution produces only read–write conflicts
  on edges, it converges nondeterministically.  (The proof's closing
  remark extends the premise to algorithms that converge under a
  deterministic asynchronous schedule; :func:`check_traits` honours the
  extension and labels it as such.)
* **Theorem 2** — if the algorithm converges under deterministic
  asynchronous execution and satisfies the monotonicity property, it
  converges nondeterministically even under write–write conflicts,
  recovering from corrupted intermediate results.

Beyond convergence, the report carries the paper's §IV/§V-C observation
about *results*: algorithms with absolute convergence conditions produce
the same final results as deterministic execution, while approximate
(fixed-point, ε-threshold) algorithms exhibit run-to-run variation.

:func:`audit_run` closes the loop between declaration and observation:
it cross-checks a finished run's conflict log against the traits the
verdict was based on, flagging e.g. an "eligible under Theorem 1"
algorithm that in fact produced write–write conflicts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..engine.result import RunResult
from ..engine.traits import AlgorithmTraits, ConflictProfile, ConvergenceKind

__all__ = ["Verdict", "EligibilityReport", "check_traits", "check_program", "audit_run"]


class Verdict(enum.Enum):
    """Outcome of applying the sufficient conditions."""

    ELIGIBLE_THEOREM_1 = "eligible (Theorem 1)"
    ELIGIBLE_THEOREM_2 = "eligible (Theorem 2)"
    ELIGIBLE_PUSH = "eligible (push-mode condition)"
    NOT_ESTABLISHED = "not established"

    @property
    def eligible(self) -> bool:
        return self is not Verdict.NOT_ESTABLISHED


@dataclass(frozen=True)
class EligibilityReport:
    """The answer, with its reasoning, for one algorithm."""

    traits: AlgorithmTraits
    verdict: Verdict
    reasons: tuple[str, ...]
    #: True when the paper predicts nondeterministic runs reproduce the
    #: deterministic final results exactly (absolute convergence).
    results_deterministic: bool
    warnings: tuple[str, ...] = field(default=())

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"Algorithm: {self.traits.name} ({self.traits.family or 'unclassified'})"]
        lines.append(f"Verdict:   {self.verdict.value}")
        for r in self.reasons:
            lines.append(f"  - {r}")
        if self.verdict.eligible:
            lines.append(
                "Results:   identical to deterministic execution"
                if self.results_deterministic
                else "Results:   expect run-to-run variation (approximate convergence)"
            )
        for w in self.warnings:
            lines.append(f"  ! {w}")
        return "\n".join(lines)


def check_traits(traits: AlgorithmTraits) -> EligibilityReport:
    """Apply Theorems 1 and 2 to declared traits."""
    reasons: list[str] = []
    warnings: list[str] = []
    verdict = Verdict.NOT_ESTABLISHED

    rw_only = traits.conflict_profile in (ConflictProfile.NONE, ConflictProfile.READ_WRITE)

    if rw_only and traits.converges_synchronously:
        verdict = Verdict.ELIGIBLE_THEOREM_1
        reasons.append(
            "converges under the synchronous model and nondeterministic "
            "execution raises only read-write conflicts (Theorem 1)"
        )
    elif rw_only and traits.converges_async_deterministic:
        verdict = Verdict.ELIGIBLE_THEOREM_1
        reasons.append(
            "converges under a deterministic asynchronous schedule with only "
            "read-write conflicts (Theorem 1, extended applicability)"
        )
    elif traits.has_write_write and traits.converges_async_deterministic and traits.is_monotone:
        verdict = Verdict.ELIGIBLE_THEOREM_2
        reasons.append(
            "converges under deterministic asynchronous execution and is "
            f"monotone ({traits.monotonicity.value}): write-write conflicts "
            "are tolerated via corruption recovery (Theorem 2)"
        )
    else:
        if traits.has_write_write and not traits.is_monotone:
            reasons.append(
                "produces write-write conflicts but is not monotone: "
                "Theorem 2 does not apply"
            )
        if not traits.converges_synchronously and not traits.converges_async_deterministic:
            reasons.append(
                "converges under neither the synchronous model nor a "
                "deterministic asynchronous schedule: no theorem's premise holds"
            )
        elif not traits.converges_synchronously:
            reasons.append("does not converge under the synchronous model")
        reasons.append(
            "the sufficient conditions of the paper do not cover this "
            "algorithm; nondeterministic execution may or may not converge"
        )

    # Secondary checks — even an eligible WW algorithm can also qualify
    # under Theorem 2's premises for its RW conflicts (informational).
    if (
        verdict is Verdict.ELIGIBLE_THEOREM_1
        and traits.has_write_write
    ):  # pragma: no cover - defensive, unreachable by construction
        warnings.append("write-write profile contradicts a Theorem 1 verdict")

    results_deterministic = (
        verdict.eligible and traits.convergence_kind is ConvergenceKind.ABSOLUTE
    )
    if verdict.eligible and traits.convergence_kind is ConvergenceKind.APPROXIMATE:
        warnings.append(
            "approximate convergence condition: results at convergence vary "
            "from one run to another (paper §V-C); validate the variation is "
            "acceptable for your use (difference-degree analysis)"
        )
    if verdict is Verdict.ELIGIBLE_THEOREM_2:
        warnings.append(
            "Theorem 2 guarantees convergence of the edge/vertex fixed point; "
            "auxiliary non-recomputable outputs (e.g. operation tallies) are "
            "not covered — see EdgeIncrementCounter for a cautionary example"
        )

    return EligibilityReport(
        traits=traits,
        verdict=verdict,
        reasons=tuple(reasons),
        results_deterministic=results_deterministic,
        warnings=tuple(warnings),
    )


def check_program(program) -> EligibilityReport:
    """Convenience: :func:`check_traits` on a program's declared traits."""
    return check_traits(program.traits)


def check_push_program(program) -> EligibilityReport:
    """The push-mode sufficient condition (the paper's future-work item).

    *If a push-mode algorithm converges under a deterministic schedule
    and every accumulator's combine is commutative and associative, and
    combines are applied atomically, then it converges
    nondeterministically*: delivery order cannot change a folded value,
    so Theorem 1's chain argument carries over with "edge value"
    replaced by "accumulator value".  Non-idempotent combines (ADD) get
    a warning — they depend on exactly-once delivery, i.e. on the atomic
    combine; idempotent ones (MIN/MAX) additionally tolerate duplicate
    delivery.
    """
    traits = program.traits
    specs = program.accumulators()
    reasons: list[str] = []
    warnings: list[str] = []

    all_ca = all(spec.op.commutative_associative for spec in specs.values())
    converges = traits.converges_async_deterministic or traits.converges_synchronously
    if converges and all_ca:
        verdict = Verdict.ELIGIBLE_PUSH
        ops = ", ".join(f"{name}:{spec.op.value}" for name, spec in specs.items())
        reasons.append(
            "converges deterministically and every accumulator combine is "
            f"commutative and associative ({ops}): delivery order cannot "
            "change folded values (push-mode condition)"
        )
        non_idem = [n for n, s in specs.items() if not s.op.idempotent]
        if non_idem:
            warnings.append(
                "non-idempotent combine(s) "
                + ", ".join(non_idem)
                + ": correctness requires the atomic combine to deliver every "
                "contribution exactly once — lost updates under "
                "AtomicityPolicy.NONE corrupt the fixed point"
            )
    else:
        verdict = Verdict.NOT_ESTABLISHED
        if not converges:
            reasons.append("no deterministic convergence premise holds")
        if not all_ca:
            reasons.append("an accumulator combine is not commutative-associative")
        reasons.append("the push-mode sufficient condition does not cover this algorithm")

    results_deterministic = (
        verdict.eligible and traits.convergence_kind is ConvergenceKind.ABSOLUTE
    )
    if verdict.eligible and traits.convergence_kind is ConvergenceKind.APPROXIMATE:
        warnings.append(
            "approximate convergence condition: results vary from one run to "
            "another (truncated residuals depend on delivery schedule)"
        )
    return EligibilityReport(
        traits=traits,
        verdict=verdict,
        reasons=tuple(reasons),
        results_deterministic=results_deterministic,
        warnings=tuple(warnings),
    )


def audit_run(result: RunResult) -> list[str]:
    """Cross-check a run's observed conflicts against the declared traits.

    Returns a list of discrepancy messages (empty = consistent).  This is
    the empirical safety net for hand-declared conflict profiles.
    """
    issues: list[str] = []
    traits = result.program.traits
    log = result.conflicts
    if result.mode == "deterministic" and log.total:
        issues.append(
            f"deterministic run logged {log.total} conflicts — engine invariant broken"
        )
    if result.mode == "nondeterministic":
        if traits.conflict_profile is ConflictProfile.NONE and log.total:
            issues.append(
                f"declared conflict-free but observed {log.read_write} read-write "
                f"and {log.write_write} write-write conflicts"
            )
        if (
            traits.conflict_profile is ConflictProfile.READ_WRITE
            and log.write_write
        ):
            issues.append(
                f"declared read-write-only but observed {log.write_write} "
                "write-write conflicts"
            )
    if not result.converged:
        report = check_traits(traits)
        if report.verdict.eligible:
            issues.append(
                f"declared eligible ({report.verdict.value}) but the run did not "
                f"converge within {result.num_iterations} iterations"
            )
    return issues
