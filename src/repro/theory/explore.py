"""Exhaustive schedule exploration: model-checking the theorems.

Seeded runs *sample* the space of nondeterministic executions; on tiny
instances we can do better and enumerate it.  The explorer drives the
nondeterministic engine one iteration at a time, branching over **every
dispatch of the active set**: each permutation of the chosen updates
laid out over the thread blocks yields a distinct pattern of ``≺ / ≻ /
∥`` relations (Definitions 1–3), so the union over permutations covers
every schedule the system model admits for the given thread count and
delay.

The search walks the resulting state graph (states are the exact bytes
of all vertex and edge arrays plus the pending active set):

* every *terminal* state (empty active set) contributes its result
  vector to the report — Theorem 2's "same final results" claim becomes
  "exactly one terminal result across all schedules";
* a *cycle* in the state graph is a witness of a schedule that never
  terminates — what the NOT-ESTABLISHED verdicts warn about;
* ``max_depth`` bounds runaway exploration of genuinely divergent
  programs.

This is exact verification, not sampling — but it is exponential, so
keep instances tiny (≤ ~5 active vertices per iteration; the Fig. 2
two-vertex scenario, triangles, small stars and paths are the intended
targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations

import numpy as np

from ..graph import DiGraph
from ..engine.config import EngineConfig
from ..engine.dispatch import DispatchPolicy, make_plan
from ..engine.frontier import initial_frontier
from ..engine.nondet_engine import NondeterministicEngine
from ..engine.program import VertexProgram
from ..engine.state import State

__all__ = ["ExplorationReport", "explore_schedules"]


@dataclass
class ExplorationReport:
    """Outcome of exhaustively exploring a program's schedule space."""

    states_visited: int
    terminal_results: list[np.ndarray]
    cycle_found: bool  #: some schedule revisits a state (can run forever)
    depth_exceeded: bool  #: some path exceeded max_depth without terminating
    max_terminal_depth: int  #: most iterations any converging schedule took

    @property
    def always_converges(self) -> bool:
        """Every explored schedule reaches an empty active set."""
        return not self.cycle_found and not self.depth_exceeded

    @property
    def result_deterministic(self) -> bool:
        """All converging schedules agree on the final result."""
        if not self.terminal_results:
            return True
        first = self.terminal_results[0]
        return all(np.array_equal(first, r) for r in self.terminal_results[1:])

    def distinct_results(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for r in self.terminal_results:
            if not any(np.array_equal(r, seen) for seen in out):
                out.append(r)
        return out


def _state_key(state: State, active: frozenset[int]) -> tuple:
    parts = [active]
    for name in state.vertex_field_names:
        parts.append(state.vertex(name).tobytes())
    for name in state.edge_field_names:
        parts.append(state.edge(name).tobytes())
    return tuple(parts)


def explore_schedules(
    program_factory,
    graph: DiGraph,
    *,
    threads: int = 2,
    delay: float = 2.0,
    max_depth: int = 25,
    max_states: int = 50_000,
    max_active: int = 6,
) -> ExplorationReport:
    """Enumerate every schedule of ``program_factory()`` on ``graph``.

    Raises ``ValueError`` if an active set ever exceeds ``max_active``
    (the permutation fan-out would explode) and ``RuntimeError`` when
    ``max_states`` is exhausted before the frontier of the search dries
    up.
    """
    probe = program_factory()
    config = EngineConfig(threads=threads, delay=delay, jitter=0.0)

    initial_state = probe.make_state(graph)
    initial_active = frozenset(initial_frontier(probe, graph).as_set())

    # Depth-first search over (state bytes, active set).
    seen: set[tuple] = set()
    on_path: set[tuple] = set()
    terminal_results: list[np.ndarray] = []
    stats = {
        "states": 0,
        "cycle": False,
        "depth_exceeded": False,
        "max_terminal_depth": 0,
    }

    def successors(state: State, active: frozenset[int]):
        ordered = sorted(active)
        if len(ordered) > max_active:
            raise ValueError(
                f"active set of {len(ordered)} exceeds max_active={max_active}; "
                "exhaustive exploration is only for tiny instances"
            )
        seen_plans: set[tuple] = set()
        for perm in permutations(ordered):
            plan = make_plan(
                np.array(perm, dtype=np.int64),
                threads,
                policy=DispatchPolicy.BLOCK,
            )
            # Distinct permutations can induce identical (thread, π)
            # placements relevant to semantics; dedup on the placement.
            placement = tuple(
                sorted((v, s.thread, s.pi) for v, s in plan.slots.items())
            )
            if placement in seen_plans:
                continue
            seen_plans.add(placement)
            branch = state.copy()
            program = program_factory()
            next_sched = NondeterministicEngine.step_iteration(
                program, graph, branch, plan, config
            )
            yield branch, frozenset(next_sched)

    def dfs(state: State, active: frozenset[int], depth: int) -> None:
        if stats["cycle"] and stats["depth_exceeded"]:
            return  # nothing left to learn
        key = _state_key(state, active)
        if key in on_path:
            stats["cycle"] = True
            return
        if key in seen:
            return
        seen.add(key)
        stats["states"] += 1
        if stats["states"] > max_states:
            raise RuntimeError(f"exceeded max_states={max_states}")
        if not active:
            terminal_results.append(
                np.array(program_factory().result(state), copy=True)
            )
            stats["max_terminal_depth"] = max(stats["max_terminal_depth"], depth)
            return
        if depth >= max_depth:
            stats["depth_exceeded"] = True
            return
        on_path.add(key)
        try:
            for branch, next_active in successors(state, active):
                dfs(branch, next_active, depth + 1)
        finally:
            on_path.discard(key)

    dfs(initial_state, initial_active, 0)
    return ExplorationReport(
        states_visited=stats["states"],
        terminal_results=terminal_results,
        cycle_found=stats["cycle"],
        depth_exceeded=stats["depth_exceeded"],
        max_terminal_depth=stats["max_terminal_depth"],
    )
