"""Empirical probe of the monotonicity property (Theorem 2's hypothesis).

Monotonicity — "the computing results monotonically increase or
decrease, but not both" — is declared by the program author.  Because a
wrong declaration silently voids Theorem 2's guarantee, this probe runs
the program under a deterministic schedule, snapshots the primary result
after every iteration, and checks the trajectory of every vertex value.

A passing probe is evidence, not proof (it inspects finitely many
executions); a failing probe is a definite refutation of the claim for
the given input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import DiGraph
from ..engine.config import EngineConfig
from ..engine.program import VertexProgram
from ..engine.runner import run
from ..engine.traits import Monotonicity

__all__ = ["MonotonicityProbe", "probe_monotonicity"]


@dataclass(frozen=True)
class MonotonicityProbe:
    """Observed directionality of per-vertex result trajectories."""

    increased: bool  #: some vertex value ever rose between iterations
    decreased: bool  #: some vertex value ever fell between iterations
    iterations_observed: int

    @property
    def observed(self) -> Monotonicity:
        """The direction consistent with the whole observation."""
        if self.increased and self.decreased:
            return Monotonicity.NONE
        if self.decreased:
            return Monotonicity.DECREASING
        if self.increased:
            return Monotonicity.INCREASING
        # Constant trajectories are vacuously monotone both ways; report
        # NONE is wrong, so pick INCREASING arbitrarily?  No: report the
        # neutral element and let the caller treat "no movement" as
        # consistent with any claim.
        return Monotonicity.NONE

    def consistent_with(self, claim: Monotonicity) -> bool:
        """Does the observation refute the declared monotonicity?"""
        if claim is Monotonicity.DECREASING:
            return not self.increased
        if claim is Monotonicity.INCREASING:
            return not self.decreased
        return True  # a NONE claim is never refuted


def probe_monotonicity(
    program: VertexProgram,
    graph: DiGraph,
    *,
    mode: str = "deterministic",
    config: EngineConfig | None = None,
    max_iterations: int = 200,
) -> MonotonicityProbe:
    """Run ``program`` and watch the primary result's per-vertex trajectory.

    NaN-safe and ∞-aware (the paper's unreached labels/distances start at
    infinity and only ever come down for monotone-decreasing programs).
    """
    # Seed the trajectory with the initial values so the very first
    # iteration's movement is observed too.
    initial = np.array(
        program.result(program.make_state(graph)), dtype=np.float64, copy=True
    )
    snapshots: list[np.ndarray] = [initial]

    def observer(iteration: int, state, next_schedule) -> None:
        snapshots.append(np.array(program.result(state), dtype=np.float64, copy=True))

    cfg = config or EngineConfig(max_iterations=max_iterations)
    if cfg.max_iterations > max_iterations:
        cfg = cfg.with_(max_iterations=max_iterations)
    run(program, graph, mode=mode, config=cfg, observer=observer)

    increased = False
    decreased = False
    for prev, cur in zip(snapshots, snapshots[1:]):
        with np.errstate(invalid="ignore"):
            if bool(np.any(cur > prev)):
                increased = True
            if bool(np.any(cur < prev)):
                decreased = True
        if increased and decreased:
            break
    return MonotonicityProbe(
        increased=increased, decreased=decreased, iterations_observed=len(snapshots)
    )
