"""Convergence-speed analysis (the paper's future-work item #3).

The paper proves nondeterministic executions converge in finitely many
iterations but leaves "theoretical analyses of the convergence speed
(e.g., in amount of iterations)" to future work.  This module provides
the empirical counterpart plus the bound its own proof technique
implies:

* **Upper bound from the Theorem 1 chain argument** — for algorithms
  with read–write conflicts only, every iteration advances every
  convergence chain by at least one hop (cases ≺, ≻ and ∥ of the proof
  all deliver the pending result within one extra iteration), so a
  nondeterministic execution needs at most as many iterations as the
  synchronous execution, plus one final empty-frontier check:
  ``iters_NE ≤ iters_SYNC + 1``.
* **Lower bound from asynchrony** — the deterministic Gauss–Seidel
  sweep is the fastest schedule the model admits on label-ascending
  propagation, so ``iters_DE ≤ iters_NE`` in practice (not a theorem:
  adversarial labelings can invert it; the report records violations
  rather than asserting).
* For write–write (Theorem 2) algorithms the chain argument still
  applies to the *corrected* values but each corruption can cost extra
  recovery iterations; the measured ratio ``iters_NE / iters_SYNC`` is
  reported so the recovery overhead is visible.

:func:`measure_convergence_speed` sweeps thread counts and delays,
measures iterations against the DE and BSP baselines, and
:meth:`SpeedReport.check_chain_bound` verifies the Theorem 1 bound for
read–write-only programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..graph import DiGraph
from ..engine.config import EngineConfig
from ..engine.runner import run
from ..engine.traits import ConflictProfile

__all__ = ["SpeedPoint", "SpeedReport", "measure_convergence_speed"]


@dataclass(frozen=True)
class SpeedPoint:
    """Iterations-to-converge at one (threads, delay, seed)."""

    threads: int
    delay: float
    seed: int
    iterations: int
    updates: int


@dataclass
class SpeedReport:
    """Measured convergence speeds against the two baselines."""

    algorithm: str
    conflict_profile: ConflictProfile
    deterministic_iterations: int
    synchronous_iterations: int
    points: list[SpeedPoint] = field(default_factory=list)

    def max_iterations(self) -> int:
        return max(p.iterations for p in self.points)

    def min_iterations(self) -> int:
        return min(p.iterations for p in self.points)

    def recovery_ratio(self) -> float:
        """Worst measured ``iters_NE / iters_SYNC`` (recovery overhead)."""
        return self.max_iterations() / max(1, self.synchronous_iterations)

    def check_chain_bound(self, slack: int = 1) -> bool:
        """Theorem 1's chain bound: NE ≤ SYNC + slack (RW-only programs).

        Returns True when the bound holds for every measured point; for
        write–write programs the bound is not implied and the method
        returns True vacuously (use :meth:`recovery_ratio` instead).
        """
        if self.conflict_profile is ConflictProfile.WRITE_WRITE:
            return True
        bound = self.synchronous_iterations + slack
        return all(p.iterations <= bound for p in self.points)

    def gauss_seidel_no_slower(self) -> bool:
        """Did the DE sweep beat (or tie) every nondeterministic run?"""
        return all(p.iterations >= self.deterministic_iterations for p in self.points)

    def rows(self) -> list[dict]:
        out = [
            {
                "threads": "DE",
                "delay": "-",
                "seed": "-",
                "iterations": self.deterministic_iterations,
            },
            {
                "threads": "SYNC",
                "delay": "-",
                "seed": "-",
                "iterations": self.synchronous_iterations,
            },
        ]
        for p in self.points:
            out.append(
                {
                    "threads": p.threads,
                    "delay": p.delay,
                    "seed": p.seed,
                    "iterations": p.iterations,
                }
            )
        return out


def measure_convergence_speed(
    program_factory: Callable,
    graph: DiGraph,
    *,
    threads_list: Sequence[int] = (2, 4, 8),
    delays: Sequence[float] = (1.0, 4.0),
    seeds: Sequence[int] = (0, 1),
    max_iterations: int = 100_000,
) -> SpeedReport:
    """Measure iterations-to-converge across schedules and baselines."""
    probe = program_factory()
    de = run(probe, graph, mode="deterministic",
             config=EngineConfig(max_iterations=max_iterations))
    if not de.converged:
        raise RuntimeError("deterministic baseline did not converge")
    sync = run(program_factory(), graph, mode="sync",
               config=EngineConfig(max_iterations=max_iterations))
    if not sync.converged:
        raise RuntimeError("synchronous baseline did not converge")

    report = SpeedReport(
        algorithm=probe.traits.name,
        conflict_profile=probe.traits.conflict_profile,
        deterministic_iterations=de.num_iterations,
        synchronous_iterations=sync.num_iterations,
    )
    for threads in threads_list:
        for delay in delays:
            for seed in seeds:
                res = run(
                    program_factory(),
                    graph,
                    mode="nondeterministic",
                    config=EngineConfig(
                        threads=threads,
                        delay=float(delay),
                        seed=seed,
                        max_iterations=max_iterations,
                    ),
                )
                if not res.converged:
                    raise RuntimeError(
                        f"nondeterministic run (P={threads}, d={delay}, "
                        f"seed={seed}) did not converge"
                    )
                report.points.append(
                    SpeedPoint(
                        threads=threads,
                        delay=float(delay),
                        seed=seed,
                        iterations=res.num_iterations,
                        updates=res.total_updates,
                    )
                )
    return report
