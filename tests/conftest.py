"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.graph import DiGraph, generators


@pytest.fixture(autouse=True)
def _export_trace_artifacts(request):
    """Preserve JSONL traces written under ``tmp_path`` as CI artifacts.

    When ``REPRO_TRACE_ARTIFACT_DIR`` is set (the CI tier-1 job sets it),
    every trace a test streams to its ``tmp_path`` is copied there after
    the test — pass or fail — so a red telemetry/recorder test ships the
    exact trace that failed.  A no-op locally.
    """
    artifact_dir = os.environ.get("REPRO_TRACE_ARTIFACT_DIR")
    tmp = None
    if artifact_dir and "tmp_path" in request.fixturenames:
        tmp = request.getfixturevalue("tmp_path")
    yield
    if tmp is None:
        return
    traces = sorted(Path(tmp).rglob("*.jsonl"))
    if not traces:
        return
    dest = Path(artifact_dir) / request.node.name
    dest.mkdir(parents=True, exist_ok=True)
    for trace in traces:
        shutil.copy2(trace, dest / trace.name)


@pytest.fixture
def path8() -> DiGraph:
    """Undirected path of 8 vertices (16 directed edges)."""
    return generators.path_graph(8)


@pytest.fixture
def star6() -> DiGraph:
    """Hub-and-spoke with 6 vertices — maximal edge contention."""
    return generators.star_graph(6)


@pytest.fixture
def two_vertex() -> DiGraph:
    """The Fig. 2 graph: 0 -> 1."""
    return generators.two_vertex_conflict_graph()


@pytest.fixture
def rmat_small() -> DiGraph:
    """128-vertex skewed random graph used across integration tests."""
    return generators.rmat(7, 6.0, seed=2)


@pytest.fixture
def er_medium() -> DiGraph:
    """512-vertex Erdős–Rényi graph, weakly connected w.h.p."""
    return generators.erdos_renyi(512, 3000, seed=9)


@pytest.fixture
def disconnected() -> DiGraph:
    """Two separate components: a path 0-1-2-3 and a triangle 4-5-6."""
    src = np.array([0, 1, 1, 2, 2, 3, 4, 5, 5, 6, 6, 4])
    dst = np.array([1, 0, 2, 1, 3, 2, 5, 4, 6, 5, 4, 6])
    return DiGraph(7, src, dst)
