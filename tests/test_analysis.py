"""Tests for difference degrees and variation studies (§V-C metric)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    ConfigurationRuns,
    VariationStudy,
    average_difference_degree,
    collect_rankings,
    cross_difference_degree,
    difference_degree,
    identical_prefix_length,
    ranking,
)


class TestRanking:
    def test_descending_by_score(self):
        r = ranking(np.array([0.1, 0.9, 0.5]))
        assert r.tolist() == [1, 2, 0]

    def test_ties_break_by_vertex_id(self):
        r = ranking(np.array([0.5, 0.5, 0.9]))
        assert r.tolist() == [2, 0, 1]

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            ranking(np.zeros((2, 2)))


class TestDifferenceDegree:
    def test_paper_example(self):
        """The worked example from §V-C of the paper."""
        r1 = np.array([1, 2, 3, 5, 7])
        r2 = np.array([1, 2, 3, 7, 5])
        assert difference_degree(r1, r2) == 3

    def test_identical_rankings(self):
        r = np.array([4, 2, 0, 1, 3])
        assert difference_degree(r, r) == 5

    def test_differ_at_zero(self):
        assert difference_degree(np.array([1, 2]), np.array([2, 1])) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            difference_degree(np.array([1]), np.array([1, 2]))

    @given(st.permutations(list(range(8))), st.permutations(list(range(8))))
    def test_symmetric(self, a, b):
        assert difference_degree(np.array(a), np.array(b)) == difference_degree(
            np.array(b), np.array(a)
        )

    @given(st.permutations(list(range(8))), st.permutations(list(range(8))))
    def test_prefix_property(self, a, b):
        """Rankings agree exactly on the prefix shorter than the degree."""
        d = difference_degree(np.array(a), np.array(b))
        assert a[:d] == b[:d]
        if d < 8:
            assert a[d] != b[d]


class TestAverages:
    def test_average_pairwise(self):
        rankings = [
            np.array([0, 1, 2]),
            np.array([0, 1, 2]),
            np.array([0, 2, 1]),
        ]
        # pairs: (0,1)->3, (0,2)->1, (1,2)->1  => mean 5/3
        assert average_difference_degree(rankings) == pytest.approx(5 / 3)

    def test_average_needs_two(self):
        with pytest.raises(ValueError):
            average_difference_degree([np.array([0])])

    def test_cross_difference(self):
        a = [np.array([0, 1, 2])]
        b = [np.array([0, 1, 2]), np.array([1, 0, 2])]
        # pairs: 3 and 0 => 1.5
        assert cross_difference_degree(a, b) == pytest.approx(1.5)

    def test_cross_empty_rejected(self):
        with pytest.raises(ValueError):
            cross_difference_degree([], [np.array([0])])

    def test_identical_prefix_all_agree(self):
        rs = [np.array([3, 1, 2, 0]), np.array([3, 1, 0, 2]), np.array([3, 1, 2, 0])]
        assert identical_prefix_length(rs) == 2

    def test_identical_prefix_single(self):
        assert identical_prefix_length([np.array([1, 0])]) == 2

    def test_identical_prefix_empty_rejected(self):
        with pytest.raises(ValueError):
            identical_prefix_length([])

    @given(
        st.lists(st.permutations(list(range(6))), min_size=2, max_size=5)
    )
    def test_identical_prefix_is_common_prefix(self, perms):
        rs = [np.array(p) for p in perms]
        k = identical_prefix_length(rs)
        first = rs[0][:k]
        for r in rs[1:]:
            assert np.array_equal(r[:k], first)


class TestCollectRankings:
    def test_deterministic_without_noise_identical(self, rmat_small):
        from repro.algorithms import PageRank

        runs = collect_rankings(
            lambda: PageRank(epsilon=1e-3),
            rmat_small,
            label="DE",
            mode="deterministic",
            runs=3,
            fp_noise=False,
        )
        assert runs.self_average() == rmat_small.num_vertices

    def test_nondeterministic_varies(self, er_medium):
        from repro.algorithms import PageRank

        runs = collect_rankings(
            lambda: PageRank(epsilon=1e-3),
            er_medium,
            label="8NE",
            mode="nondeterministic",
            threads=8,
            runs=3,
        )
        assert runs.self_average() < er_medium.num_vertices

    def test_label_and_count(self, rmat_small):
        from repro.algorithms import PageRank

        runs = collect_rankings(
            lambda: PageRank(epsilon=1e-2),
            rmat_small,
            label="4NE",
            mode="nondeterministic",
            runs=4,
        )
        assert runs.label == "4NE"
        assert len(runs.rankings) == 4


class TestVariationStudy:
    def make_study(self):
        a = ConfigurationRuns("A", (np.array([0, 1, 2]), np.array([0, 2, 1])))
        b = ConfigurationRuns("B", (np.array([0, 1, 2]), np.array([0, 1, 2])))
        return VariationStudy([a, b])

    def test_table2_labels(self):
        t2 = self.make_study().table2()
        assert set(t2) == {"A vs. A", "B vs. B"}
        assert t2["A vs. A"] == 1.0
        assert t2["B vs. B"] == 3.0

    def test_table3_labels(self):
        t3 = self.make_study().table3()
        assert set(t3) == {"A vs. B"}
        # pairs: (012,012)->3, (012,012)->3, (021,012)->1, (021,012)->1
        assert t3["A vs. B"] == pytest.approx(2.0)

    def test_identical_prefix(self):
        assert self.make_study().identical_prefix() == 1
