"""Tests for atomicity policies, torn values, and conflict classification."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import (
    AccessRecord,
    AtomicityPolicy,
    ConflictEvent,
    ConflictLog,
    classify_accesses,
    guarantees_atomicity,
    tear,
)


class TestPolicies:
    def test_guarantees(self):
        assert guarantees_atomicity(AtomicityPolicy.LOCK)
        assert guarantees_atomicity(AtomicityPolicy.CACHE_LINE)
        assert guarantees_atomicity(AtomicityPolicy.ATOMIC_RELAXED)
        assert not guarantees_atomicity(AtomicityPolicy.NONE)

    def test_enum_values(self):
        assert AtomicityPolicy("lock") is AtomicityPolicy.LOCK
        assert AtomicityPolicy("cache-line") is AtomicityPolicy.CACHE_LINE


class TestTear:
    def test_mixes_halves(self):
        rng = np.random.default_rng(0)
        a, b = 1.2345678901234, 9.8765432109876
        seen = {tear(a, b, rng) for _ in range(50)}
        expected = set()
        ua = np.float64(a).view(np.uint64)
        ub = np.float64(b).view(np.uint64)
        hi = np.uint64(0xFFFFFFFF00000000)
        lo = np.uint64(0x00000000FFFFFFFF)
        expected.add(float(((ua & hi) | (ub & lo)).view(np.float64)))
        expected.add(float(((ub & hi) | (ua & lo)).view(np.float64)))
        assert seen <= expected
        assert len(seen) == 2

    def test_small_integer_labels_tear_to_inputs(self):
        """Small ints have zero low mantissa bits: tearing is a no-op.

        This is why WCC is accidentally torn-immune (see ablation A1).
        """
        rng = np.random.default_rng(1)
        for _ in range(20):
            assert tear(5.0, 12.0, rng) in (5.0, 12.0)

    def test_infinity_low_half_is_zero(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            assert tear(np.inf, 7.0, rng) in (np.inf, 7.0)

    def test_never_nan(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            v = tear(np.nan, 1.5, rng)
            assert not np.isnan(v)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.integers(0, 2**31))
    def test_tear_is_deterministic_given_rng_state(self, a, b, seed):
        v1 = tear(a, b, np.random.default_rng(seed))
        v2 = tear(a, b, np.random.default_rng(seed))
        assert v1 == v2 or (np.isnan(v1) and np.isnan(v2))


def W(vid, t=0.0, thread=None, value=0.0):
    # Default: each task on its own thread, so distinct-vid pairs race.
    return AccessRecord(
        vid=vid, thread=vid if thread is None else thread, time=t,
        is_write=True, value=value,
    )


def R(vid, t=0.0, thread=None):
    return AccessRecord(
        vid=vid, thread=vid if thread is None else thread, time=t, is_write=False
    )


class TestClassifyAccesses:
    def classify(self, accesses, winner=None):
        log = ConflictLog()
        classify_accesses(log, 0, 0, "e", accesses, winner)
        return log

    def test_no_writes_no_conflicts(self):
        log = self.classify([R(1), R(2)])
        assert log.total == 0

    def test_single_writer_no_readers(self):
        log = self.classify([W(1)], winner=1)
        assert log.total == 0
        assert log.lost_writes == 0

    def test_read_write_pair(self):
        log = self.classify([W(1), R(2)], winner=1)
        assert log.read_write == 1
        assert log.write_write == 0
        assert log.contended_edges == 1

    def test_own_read_then_write_not_a_conflict(self):
        log = self.classify([R(1), W(1)], winner=1)
        assert log.total == 0

    def test_write_write_pair(self):
        log = self.classify([W(1), W(2)], winner=2)
        assert log.write_write == 1
        assert log.lost_writes == 1

    def test_three_writers_three_pairs(self):
        log = self.classify([W(1), W(2), W(3)], winner=3)
        assert log.write_write == 3
        assert log.lost_writes == 2

    def test_mixed(self):
        log = self.classify([W(1), W(2), R(3)], winner=1)
        # R3 conflicts with both writers; writers conflict with each other.
        assert log.read_write == 2
        assert log.write_write == 1

    def test_same_thread_accesses_never_conflict(self):
        """Program-ordered accesses are not races (single-thread runs
        must log zero conflicts)."""
        log = self.classify([W(1, thread=0), R(2, thread=0), W(3, thread=0)], winner=3)
        assert log.total == 0
        assert log.lost_writes == 0

    def test_duplicate_writes_by_same_vid_single_writer(self):
        log = self.classify([W(1, t=0.0), W(1, t=1.0)], winner=1)
        assert log.write_write == 0
        # Same task rewrote the edge; its earlier write is not "lost" to
        # a competitor.
        assert log.lost_writes == 0

    def test_per_iteration_counter(self):
        log = ConflictLog()
        classify_accesses(log, 3, 0, "e", [W(1), R(2)], 1)
        classify_accesses(log, 3, 1, "e", [W(1), R(2)], 1)
        assert log.per_iteration[3] == 2

    def test_event_retention_bounded(self):
        log = ConflictLog(keep_events=True, max_events=2)
        for eid in range(5):
            classify_accesses(log, 0, eid, "e", [W(1), R(2)], 1)
        assert len(log.events) == 2
        assert all(isinstance(e, ConflictEvent) for e in log.events)

    def test_events_not_kept_by_default(self):
        log = ConflictLog()
        classify_accesses(log, 0, 0, "e", [W(1), R(2)], 1)
        assert log.events == []

    def test_unknown_kind_rejected(self):
        log = ConflictLog()
        with pytest.raises(ValueError):
            log.record(ConflictEvent(0, 0, "e", "bogus", 1, 2))

    def test_summary_keys(self):
        log = ConflictLog()
        assert set(log.summary()) == {
            "read_write",
            "write_write",
            "contended_edges",
            "lost_writes",
            "stale_reads",
        }
