"""Benchmark-trajectory schema v2: backfill-safe widening.

v2 entries carry a ``phases`` breakdown per timed cell; v1 files on
disk must keep parsing, and appending a v2 entry to a v1 file must be
an explicit, flagged decision — never a silent mix.
"""

import json

import pytest

from repro.experiments.benchtrack import (
    SCHEMA,
    SCHEMA_V1,
    append_trajectory,
    run_nondet_suite,
)


def _v1_payload():
    return {
        "schema": SCHEMA_V1,
        "entries": [{
            "timestamp": "2026-07-01T00:00:00+00:00",
            "host": {"cpus": 8},
            "results": {"scales": {"8": {"algorithms": {
                "wcc": {"vectorized": {"seconds": 0.5, "iterations": 3}},
            }}}},
        }],
    }


def _entry():
    return {"results": {"scales": {}}}


class TestSchemaSkew:
    def test_fresh_file_gets_v2_header(self, tmp_path):
        path = tmp_path / "BENCH.json"
        payload = append_trajectory(path, _entry())
        assert payload["schema"] == SCHEMA
        assert json.loads(path.read_text())["schema"] == SCHEMA

    def test_v1_append_refused_by_default(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(_v1_payload()))
        with pytest.raises(ValueError, match="allow_schema_skew"):
            append_trajectory(path, _entry())
        # Refusal is side-effect free: the file is untouched.
        assert json.loads(path.read_text())["schema"] == SCHEMA_V1
        assert len(json.loads(path.read_text())["entries"]) == 1

    def test_refusal_names_the_cli_flag(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(_v1_payload()))
        with pytest.raises(ValueError, match="--allow-schema-skew"):
            append_trajectory(path, _entry())

    def test_skew_flag_upgrades_in_place(self, tmp_path):
        path = tmp_path / "BENCH.json"
        v1 = _v1_payload()
        path.write_text(json.dumps(v1))
        payload = append_trajectory(path, _entry(), allow_schema_skew=True)
        assert payload["schema"] == SCHEMA
        assert len(payload["entries"]) == 2
        # Old entries are preserved verbatim — no rewriting, no phases
        # back-filled.
        assert payload["entries"][0] == v1["entries"][0]
        assert "phases" not in payload["entries"][0]["results"][
            "scales"]["8"]["algorithms"]["wcc"]["vectorized"]

    def test_v2_appends_stay_unflagged(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_trajectory(path, _entry())
        payload = append_trajectory(path, _entry())
        assert payload["schema"] == SCHEMA
        assert len(payload["entries"]) == 2

    def test_legacy_snapshot_adopted(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"some": "old snapshot"}))
        payload = append_trajectory(path, _entry())
        assert payload["schema"] == SCHEMA
        assert payload["entries"][0]["legacy"] is True


class TestPhasesInEntries:
    def test_timed_cells_carry_phase_breakdown(self):
        results = run_nondet_suite(scales=(4,), object_max_scale=4)
        cell = results["scales"]["4"]["algorithms"]["wcc"]
        for kind in ("vectorized", "object"):
            phases = cell[kind]["phases"]
            assert phases, f"{kind} cell has no phases"
            assert all(v >= 0.0 for v in phases.values())
            assert "gather" in phases
            # The breakdown accounts for (most of) the measured time.
            assert sum(phases.values()) <= cell[kind]["seconds"] * 1.1 + 1e-3


def test_checked_in_trajectories_are_v2():
    """The repo's own BENCH files were migrated with entries intact."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    for name in ("BENCH_nondet.json", "BENCH_parallel.json"):
        payload = json.loads((root / name).read_text())
        assert payload["schema"] == SCHEMA
        assert payload["entries"], name
