"""Unit tests for GraphBuilder."""

import numpy as np
import pytest

from repro.graph import GraphBuilder


class TestAdd:
    def test_add_edge_chaining(self):
        g = GraphBuilder().add_edge(0, 1).add_edge(1, 2).build()
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_add_undirected_creates_both_directions(self):
        g = GraphBuilder().add_undirected_edge(0, 1).build()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_add_undirected_self_loop_once(self):
        g = GraphBuilder().add_undirected_edge(2, 2).build()
        assert g.num_edges == 1

    def test_add_edges_iterable(self):
        g = GraphBuilder().add_edges([(0, 1), (1, 2), (2, 0)]).build()
        assert g.num_edges == 3

    def test_add_edge_arrays(self):
        g = GraphBuilder().add_edge_arrays([0, 1], [1, 2]).build()
        assert g.num_edges == 2

    def test_pending_count(self):
        b = GraphBuilder().add_edge(0, 1).add_edge(0, 1)
        assert b.num_pending_edges == 2

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            GraphBuilder().add_edge(-1, 0)

    def test_fixed_range_enforced(self):
        b = GraphBuilder(num_vertices=3)
        with pytest.raises(ValueError, match="fixed range"):
            b.add_edge(0, 3)

    def test_fixed_range_enforced_for_arrays(self):
        b = GraphBuilder(num_vertices=3)
        with pytest.raises(ValueError, match="fixed range"):
            b.add_edge_arrays([0, 1], [1, 5])

    def test_array_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal-length"):
            GraphBuilder().add_edge_arrays([0, 1], [1])

    def test_negative_fixed_size(self):
        with pytest.raises(ValueError):
            GraphBuilder(num_vertices=-2)


class TestBuild:
    def test_inferred_vertex_count(self):
        g = GraphBuilder().add_edge(3, 7).build()
        assert g.num_vertices == 8

    def test_fixed_vertex_count(self):
        g = GraphBuilder(num_vertices=10).add_edge(0, 1).build()
        assert g.num_vertices == 10

    def test_empty_build(self):
        g = GraphBuilder().build()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_dedup(self):
        g = GraphBuilder().add_edges([(0, 1), (0, 1), (1, 0)]).build(dedup=True)
        assert g.num_edges == 2

    def test_drop_self_loops(self):
        g = GraphBuilder().add_edges([(0, 0), (0, 1), (1, 1)]).build(drop_self_loops=True)
        assert g.num_edges == 1
        assert g.has_edge(0, 1)

    def test_relabel_compacts_ids(self):
        g = GraphBuilder().add_edges([(10, 20), (20, 30)]).build(relabel=True)
        assert g.num_vertices == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_relabel_conflicts_with_fixed_n(self):
        b = GraphBuilder(num_vertices=50).add_edge(10, 20)
        with pytest.raises(ValueError, match="relabel"):
            b.build(relabel=True)

    def test_build_relabeled_mapping(self):
        g, mapping = GraphBuilder().add_edges([(5, 9), (9, 100)]).build_relabeled()
        assert mapping == {5: 0, 9: 1, 100: 2}
        assert g.num_vertices == 3
        assert g.has_edge(mapping[5], mapping[9])

    def test_build_relabeled_with_dedup_and_loops(self):
        g, mapping = GraphBuilder().add_edges(
            [(4, 4), (4, 8), (4, 8)]
        ).build_relabeled(dedup=True, drop_self_loops=True)
        assert g.num_edges == 1
        assert set(mapping) == {4, 8}

    def test_builder_reusable_after_build(self):
        b = GraphBuilder().add_edge(0, 1)
        g1 = b.build()
        b.add_edge(1, 2)
        g2 = b.build()
        assert g1.num_edges == 1
        assert g2.num_edges == 2
