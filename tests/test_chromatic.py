"""Tests for greedy coloring and the chromatic deterministic-parallel engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BFS, PageRank, SSSP, WeaklyConnectedComponents, reference
from repro.engine import EngineConfig, run
from repro.graph import DiGraph, color_classes, generators, greedy_coloring, is_valid_coloring
from repro.perf import estimate_time


class TestGreedyColoring:
    def test_triangle_needs_three(self):
        g = DiGraph(3, [0, 1, 2], [1, 2, 0])
        colors = greedy_coloring(g)
        assert is_valid_coloring(g, colors)
        assert int(colors.max()) + 1 == 3

    def test_path_needs_two(self):
        g = generators.path_graph(10)
        colors = greedy_coloring(g)
        assert is_valid_coloring(g, colors)
        assert int(colors.max()) + 1 == 2

    def test_star_needs_two(self, star6):
        colors = greedy_coloring(star6)
        assert is_valid_coloring(star6, colors)
        assert int(colors.max()) + 1 == 2

    def test_greedy_bound(self):
        g = generators.rmat(8, 6.0, seed=4)
        colors = greedy_coloring(g)
        assert is_valid_coloring(g, colors)
        max_deg = max(g.degree(v) for v in range(g.num_vertices))
        assert int(colors.max()) + 1 <= max_deg + 1

    def test_random_order_variant(self):
        g = generators.rmat(7, 5.0, seed=1)
        colors = greedy_coloring(g, seed=9)
        assert is_valid_coloring(g, colors)

    def test_explicit_order(self):
        g = generators.path_graph(4)
        colors = greedy_coloring(g, order=np.array([3, 2, 1, 0]))
        assert is_valid_coloring(g, colors)

    def test_order_and_seed_exclusive(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError, match="not both"):
            greedy_coloring(g, order=np.arange(4), seed=1)

    def test_bad_order_rejected(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError, match="permutation"):
            greedy_coloring(g, order=np.array([0, 0, 1, 2]))

    def test_self_loops_ignored_by_validity(self):
        g = DiGraph(2, [0, 0], [0, 1])
        colors = greedy_coloring(g)
        assert is_valid_coloring(g, colors)

    def test_color_classes_partition(self):
        g = generators.rmat(7, 5.0, seed=2)
        colors = greedy_coloring(g)
        classes = color_classes(colors)
        all_vertices = sorted(v for cls in classes for v in cls.tolist())
        assert all_vertices == list(range(g.num_vertices))

    def test_empty_graph(self):
        g = DiGraph(0, [], [])
        assert greedy_coloring(g).size == 0
        assert color_classes(np.array([])) == []

    @given(st.integers(2, 20), st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_always_valid_on_random_graphs(self, n, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(0, 3 * n))
        g = DiGraph(n, rng.integers(0, n, m), rng.integers(0, n, m))
        assert is_valid_coloring(g, greedy_coloring(g))


class TestChromaticEngine:
    @pytest.mark.parametrize("factory,checker", [
        (WeaklyConnectedComponents, lambda g, r: np.array_equal(r, reference.wcc_reference(g))),
        (lambda: BFS(source=0), lambda g, r: np.array_equal(r, reference.bfs_reference(g, 0))),
    ], ids=["wcc", "bfs"])
    def test_exact_results(self, rmat_small, factory, checker):
        res = run(factory(), rmat_small, mode="chromatic", threads=4)
        assert res.converged
        assert checker(rmat_small, res.result())

    def test_sssp_exact(self, rmat_small):
        prog = SSSP(source=0)
        truth = reference.sssp_reference(rmat_small, 0, prog.make_weights(rmat_small))
        res = run(SSSP(source=0), rmat_small, mode="chromatic", threads=4)
        assert np.array_equal(res.result(), truth)

    def test_deterministic_and_parallel(self, rmat_small):
        a = run(WeaklyConnectedComponents(), rmat_small, mode="chromatic", threads=4)
        b = run(WeaklyConnectedComponents(), rmat_small, mode="chromatic", threads=16)
        # results identical at any thread count (deterministic), zero conflicts
        assert np.array_equal(a.result(), b.result())
        assert a.conflicts.total == 0 and b.conflicts.total == 0

    def test_num_colors_reported(self, rmat_small):
        res = run(WeaklyConnectedComponents(), rmat_small, mode="chromatic")
        assert res.extra["num_colors"] >= 2

    def test_pagerank_converges(self, rmat_small):
        res = run(PageRank(epsilon=1e-4), rmat_small, mode="chromatic", threads=4)
        assert res.converged
        ref = reference.pagerank_reference(rmat_small)
        assert np.max(np.abs(res.result().astype(np.float64) - ref)) < 0.05

    def test_iterations_close_to_gauss_seidel(self, rmat_small):
        """Chromatic is asynchronous: same ballpark as the sequential sweep."""
        gs = run(WeaklyConnectedComponents(), rmat_small, mode="deterministic")
        ch = run(WeaklyConnectedComponents(), rmat_small, mode="chromatic")
        assert ch.num_iterations <= 3 * gs.num_iterations

    def test_cost_ordering_de_chromatic_ne(self):
        """§VI's story: deterministic parallel beats deterministic
        sequential; nondeterministic beats both (no barriers per color,
        no coloring overhead)."""
        from repro.graph import load_dataset

        g = load_dataset("web-google-mini", scale=9, seed=7)
        de = estimate_time(run(WeaklyConnectedComponents(), g, mode="deterministic"))
        ch = estimate_time(run(WeaklyConnectedComponents(), g, mode="chromatic",
                               config=EngineConfig(threads=8)))
        ne = estimate_time(run(WeaklyConnectedComponents(), g, mode="nondeterministic",
                               config=EngineConfig(threads=8, seed=0)))
        assert ne < ch < de
