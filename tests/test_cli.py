"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestEligibility:
    def test_all_algorithms(self, capsys):
        code, out = run_cli(capsys, "eligibility")
        assert code == 0
        for name in ("PageRank", "WCC", "AntiParity"):
            assert name in out

    def test_subset(self, capsys):
        code, out = run_cli(capsys, "eligibility", "WCC")
        assert code == 0
        assert "Theorem 2" in out
        assert "PageRank" not in out

    def test_unknown_algorithm(self, capsys):
        code = main(["eligibility", "Nope"])
        assert code == 1
        assert "unknown algorithm" in capsys.readouterr().err


class TestRun:
    def test_run_wcc(self, capsys):
        code, out = run_cli(
            capsys, "run", "WCC", "--scale", "7", "--threads", "4", "--audit"
        )
        assert code == 0
        assert "converged" in out
        assert "CLEAN" in out

    def test_run_all_modes(self, capsys):
        for mode in ("sync", "deterministic", "nondeterministic", "pure-async"):
            code, out = run_cli(
                capsys, "run", "BFS", "--scale", "7", "--mode", mode
            )
            assert code == 0, mode
            assert "True" in out

    def test_nonconvergent_exit_code(self, capsys):
        code, _ = run_cli(
            capsys, "run", "AntiParity", "--scale", "6", "--max-iterations", "10"
        )
        assert code == 2

    def test_dataset_choice_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "WCC", "--dataset", "nope"])

    def test_algorithm_choice_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "NoSuchAlgo"])


class TestExperimentCommands:
    def test_table1(self, capsys):
        code, out = run_cli(capsys, "table1", "--scale", "7")
        assert code == 0
        assert "Table I" in out
        assert "web-berkstan-mini" in out

    def test_table2_small(self, capsys):
        code, out = run_cli(capsys, "table2", "--scale", "7", "--runs", "2")
        assert code == 0
        assert "DE vs. DE" in out

    def test_speed(self, capsys):
        code, out = run_cli(
            capsys, "speed", "BFS", "--scale", "7", "--threads", "2",
            "--delays", "1.0",
        )
        assert code == 0
        assert "chain bound" in out
        assert "SYNC" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRegistry:
    def test_registry_matches_zoo(self):
        assert set(ALGORITHMS) >= {
            "PageRank", "WCC", "SSSP", "BFS", "SpMV", "MaxLabel",
            "EdgeIncrementCounter", "AntiParity",
        }

    def test_factories_produce_programs(self):
        for name, factory in ALGORITHMS.items():
            program = factory()
            assert hasattr(program, "traits"), name


class TestBackendAndBench:
    def test_run_process_backend(self, capsys):
        code, out = run_cli(
            capsys, "run", "PageRank", "--scale", "6", "--threads", "2",
            "--backend", "process", "--audit",
        )
        assert code == 0
        assert "CLEAN" in out

    def test_bench_appends_trajectory_entries(self, capsys, tmp_path):
        import json

        argv = ("bench", "--suite", "nondet", "--scales", "4",
                "--out-dir", str(tmp_path))
        code, out = run_cli(capsys, *argv)
        assert code == 0
        assert "BENCH_nondet.json" in out
        payload = json.loads((tmp_path / "BENCH_nondet.json").read_text())
        assert payload["schema"] == "bench-trajectory/v2"
        assert len(payload["entries"]) == 1
        assert payload["entries"][0]["host"]["cpus"]
        # appending, not overwriting: a second run grows the trajectory
        code, _ = run_cli(capsys, *argv)
        assert code == 0
        payload = json.loads((tmp_path / "BENCH_nondet.json").read_text())
        assert len(payload["entries"]) == 2

    def test_bench_parallel_suite(self, capsys, tmp_path):
        import json

        code, out = run_cli(
            capsys, "bench", "--suite", "parallel", "--scales", "4",
            "--workers", "1", "2", "--out-dir", str(tmp_path),
        )
        assert code == 0
        payload = json.loads((tmp_path / "BENCH_parallel.json").read_text())
        entry = payload["entries"][-1]["results"]
        cell = entry["scales"]["4"]["algorithms"]["pagerank"]
        assert set(cell["workers"]) == {"1", "2"}
        for stat in cell["workers"].values():
            assert stat["speedup"] > 0
