"""Cross-engine conformance of convergence accounting at the cap.

Every engine claims ``converged=True`` only through the confirming
empty-frontier check at the top of an executed iteration — never by
peeking at the *next* frontier when ``max_iterations`` expires.  With
``K`` = the iteration count of the unbounded run, all engines must
agree:

* cap ``K+1`` → ``(converged=True,  num_iterations=K)`` — the extra
  slot is spent entering the loop once more and confirming emptiness;
* cap ``K``   → ``(converged=False, num_iterations=K)`` — all work
  done, but the confirming iteration never ran;
* cap ``K-1`` → ``(converged=False, num_iterations=K-1)``.

The push engine used to shortcut this with a ``while/else`` that
recomputed ``converged`` from the next frontier, over-claiming at the
cap; this suite pins the uniform semantics for every engine.
"""

import pytest

from repro.algorithms import PushBFS, WeaklyConnectedComponents
from repro.engine import EngineConfig, run, run_push
from repro.graph import generators

MODES = ["sync", "deterministic", "chromatic", "nondeterministic",
         "threads"]


@pytest.fixture(scope="module")
def graph():
    return generators.rmat(5, 8.0, seed=3)


def _capped_runner(mode, graph):
    base = EngineConfig(threads=2, seed=0, jitter=0.5)

    if mode == "push":
        def invoke(cap):
            return run_push(PushBFS(source=0), graph,
                            config=base.with_(max_iterations=cap))
    elif mode == "vectorized":
        def invoke(cap):
            return run(WeaklyConnectedComponents(), graph,
                       mode="nondeterministic", vectorized="require",
                       config=base.with_(max_iterations=cap))
    elif mode == "vectorized-push":
        def invoke(cap):
            return run(WeaklyConnectedComponents(), graph,
                       mode="nondeterministic", vectorized="require",
                       direction="push",
                       config=base.with_(max_iterations=cap))
    else:
        def invoke(cap):
            return run(WeaklyConnectedComponents(), graph, mode=mode,
                       config=base.with_(max_iterations=cap))
    return invoke


@pytest.mark.parametrize(
    "mode", MODES + ["vectorized", "vectorized-push", "push"])
def test_at_cap_accounting(graph, mode):
    invoke = _capped_runner(mode, graph)
    free = invoke(10_000)
    assert free.converged
    k = free.num_iterations
    assert k >= 2, f"{mode}: trivial run cannot exercise the cap"

    confirmed = invoke(k + 1)
    assert (confirmed.converged, confirmed.num_iterations) == (True, k), mode

    at_cap = invoke(k)
    assert (at_cap.converged, at_cap.num_iterations) == (False, k), (
        f"{mode}: a run that never executed the confirming empty "
        f"iteration must not report converged")

    short = invoke(k - 1)
    assert (short.converged, short.num_iterations) == (False, k - 1), mode


def test_pure_async_task_budget_truncation(graph):
    """The barrier-free engine has no confirming iteration — it claims
    convergence by *draining its queues*, which is a genuine
    confirmation.  Its cap is a task budget (``max_iterations * n``), so
    the conformance contract is: a truncated budget must never report
    converged, and a sufficient one may."""
    base = EngineConfig(threads=2, seed=0, jitter=0.5)

    def invoke(cap):
        return run(WeaklyConnectedComponents(), graph, mode="pure-async",
                   config=base.with_(max_iterations=cap))

    free = invoke(10_000)
    assert free.converged
    k = free.num_iterations  # ceil(tasks / n): tasks exceed (k-1)*n
    assert k >= 2
    assert invoke(k).converged
    short = invoke(k - 1)
    assert (short.converged, short.num_iterations) == (False, k - 1)
