"""Tests for the virtual-time cost model and performance metrics."""

import pytest

from repro.algorithms import PageRank, WeaklyConnectedComponents
from repro.engine import AtomicityPolicy, EngineConfig, run
from repro.perf import (
    CostModel,
    CostParams,
    estimate_time,
    price_run,
    scaling_efficiency,
    speedup,
)


@pytest.fixture(scope="module")
def ne_run():
    from repro.graph import generators

    g = generators.rmat(7, 6.0, seed=2)
    return run(WeaklyConnectedComponents(), g, mode="nondeterministic",
               config=EngineConfig(threads=8, seed=0))


@pytest.fixture(scope="module")
def de_run():
    from repro.graph import generators

    g = generators.rmat(7, 6.0, seed=2)
    return run(WeaklyConnectedComponents(), g, mode="deterministic",
               config=EngineConfig(threads=4))


class TestCostParams:
    def test_sync_overhead_ordering(self):
        p = CostParams()
        assert p.sync_overhead(AtomicityPolicy.LOCK) > p.sync_overhead(
            AtomicityPolicy.ATOMIC_RELAXED
        )
        assert p.sync_overhead(AtomicityPolicy.ATOMIC_RELAXED) > p.sync_overhead(
            AtomicityPolicy.CACHE_LINE
        )
        assert p.sync_overhead(AtomicityPolicy.NONE) == p.sync_overhead(
            AtomicityPolicy.CACHE_LINE
        )

    def test_contention_identity_below_knee(self):
        p = CostParams(bandwidth_threads=6.0)
        assert p.memory_contention(1) == 1.0
        assert p.memory_contention(6) == 1.0

    def test_contention_monotone_past_knee(self):
        p = CostParams()
        assert p.memory_contention(8) < p.memory_contention(16)
        assert p.memory_contention(8) > 1.0

    def test_with_functional_update(self):
        p = CostParams().with_(lock_overhead_ns=999.0)
        assert p.lock_overhead_ns == 999.0
        assert CostParams().lock_overhead_ns != 999.0


class TestCostModel:
    def test_policy_ordering_on_same_run(self, ne_run):
        m = CostModel()
        t_lock = m.nondeterministic_time(ne_run, AtomicityPolicy.LOCK)
        t_atomic = m.nondeterministic_time(ne_run, AtomicityPolicy.ATOMIC_RELAXED)
        t_arch = m.nondeterministic_time(ne_run, AtomicityPolicy.CACHE_LINE)
        assert t_arch < t_atomic < t_lock

    def test_default_policy_from_config(self, ne_run):
        m = CostModel()
        assert m.nondeterministic_time(ne_run) == m.nondeterministic_time(
            ne_run, AtomicityPolicy.CACHE_LINE
        )

    def test_deterministic_time_positive_and_has_plot_overhead(self, de_run):
        m = CostModel()
        with_plot = m.deterministic_time(de_run)
        no_plot = CostModel(CostParams(plot_task_ns=0.0, plot_edge_ns=0.0)).deterministic_time(de_run)
        assert with_plot > no_plot > 0.0

    def test_time_dispatches_on_mode(self, de_run, ne_run):
        m = CostModel()
        assert m.time(de_run) == m.deterministic_time(de_run)
        assert m.time(ne_run) == m.nondeterministic_time(ne_run)

    def test_sync_time(self):
        from repro.graph import generators

        g = generators.path_graph(8)
        res = run(WeaklyConnectedComponents(), g, mode="sync",
                  config=EngineConfig(threads=4))
        assert CostModel().synchronous_time(res) > 0.0

    def test_barrier_charged_per_iteration(self, ne_run):
        base = CostModel(CostParams(barrier_ns=0.0)).nondeterministic_time(ne_run)
        with_barrier = CostModel(CostParams(barrier_ns=1e6)).nondeterministic_time(ne_run)
        expected = base + ne_run.num_iterations * 1e-3
        assert with_barrier == pytest.approx(expected)

    def test_estimate_time_wrapper(self, ne_run):
        assert estimate_time(ne_run) == CostModel().time(ne_run)
        custom = estimate_time(ne_run, params=CostParams(read_mem_ns=1000.0))
        assert custom > estimate_time(ne_run)

    def test_more_threads_faster_below_knee(self):
        """Same work split over more (unsaturated) threads takes less time."""
        from repro.graph import generators

        g = generators.rmat(8, 8.0, seed=1)
        m = CostModel()
        times = []
        for p in (1, 2, 4):
            res = run(PageRank(epsilon=1e-3), g, mode="nondeterministic",
                      config=EngineConfig(threads=p, seed=0))
            times.append(m.nondeterministic_time(res))
        assert times[0] > times[1] > times[2]


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_scaling_efficiency(self):
        assert scaling_efficiency(8.0, 1.0, 8) == 1.0
        assert scaling_efficiency(8.0, 2.0, 8) == 0.5
        with pytest.raises(ValueError):
            scaling_efficiency(8.0, 1.0, 0)

    def test_price_run_de(self, de_run):
        row = price_run(de_run, algorithm="WCC", graph="g")
        assert row.mode == "DE"
        assert row.policy == "-"
        assert row.virtual_seconds > 0

    def test_price_run_ne_policy(self, ne_run):
        row = price_run(ne_run, algorithm="WCC", graph="g",
                        policy=AtomicityPolicy.LOCK)
        assert row.mode == "NE"
        assert row.policy == "lock"
        assert row.threads == 8

    def test_timing_row_as_dict(self, ne_run):
        row = price_run(ne_run, algorithm="WCC", graph="g")
        d = row.as_dict()
        assert d["algorithm"] == "WCC"
        assert d["iterations"] == ne_run.num_iterations
