"""Tests for dataset stand-ins and the experiment drivers."""

import numpy as np
import pytest

from repro.algorithms import WeaklyConnectedComponents
from repro.graph import load_dataset
from repro.graph.datasets import PAPER_DATASETS, dataset_names, paper_table1_reference
from repro.experiments import (
    PAPER_EPSILONS,
    format_table,
    run_delay_sweep,
    run_dispatch_study,
    run_figure3,
    run_table1,
    run_table2,
    run_torn_study,
)


class TestDatasets:
    def test_four_paper_graphs(self):
        assert dataset_names() == [
            "web-berkstan-mini",
            "web-google-mini",
            "soc-livejournal1-mini",
            "cage15-mini",
        ]

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    @pytest.mark.parametrize("name", dataset_names())
    def test_loadable_and_valid(self, name):
        g = load_dataset(name, scale=7)
        assert g.num_vertices == 128
        g.validate()

    def test_deterministic_per_seed(self):
        a = load_dataset("web-google-mini", scale=7, seed=3)
        b = load_dataset("web-google-mini", scale=7, seed=3)
        assert a == b

    def test_ratio_ordering_matches_paper(self):
        """E/V ordering: google < berkstan < livejournal < cage15."""
        ratios = {
            name: (lambda g: g.num_edges / g.num_vertices)(load_dataset(name, scale=9))
            for name in dataset_names()
        }
        assert ratios["web-google-mini"] < ratios["web-berkstan-mini"]
        assert ratios["soc-livejournal1-mini"] < ratios["cage15-mini"]

    def test_reference_rows(self):
        rows = paper_table1_reference()
        assert len(rows) == 4
        assert rows[0]["graph"] == "web-BerkStan"
        assert rows[0]["V"] == 685_231


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_union_of_columns(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456789}])
        assert "0.1235" in text


class TestTable1:
    def test_rows_and_render(self):
        result = run_table1(scale=7)
        assert len(result.rows) == 4
        text = result.render()
        assert "Table I" in text
        assert "web-berkstan-mini" in text

    def test_paper_ratio_column_present(self):
        result = run_table1(scale=7)
        for row in result.rows:
            assert "paper E/V" in row
            assert row["V"] == 128


class TestFigure3:
    @pytest.fixture(scope="class")
    def small_grid(self):
        from repro.graph import generators

        graphs = {"tiny": generators.rmat(7, 6.0, seed=2)}
        algos = {"WCC": WeaklyConnectedComponents}
        return run_figure3(threads_list=(2, 4), algorithms=algos, graphs=graphs)

    def test_row_count(self, small_grid):
        # 1 DE row + 2 thread counts x 3 policies.
        assert len(small_grid.rows) == 7

    def test_policy_ordering(self, small_grid):
        for threads in (2, 4):
            lock = small_grid.cell("WCC", "tiny", "NE", threads, "lock")
            arch = small_grid.cell("WCC", "tiny", "NE", threads, "cache-line")
            atomic = small_grid.cell("WCC", "tiny", "NE", threads, "atomic-relaxed")
            assert arch.virtual_seconds < atomic.virtual_seconds < lock.virtual_seconds

    def test_de_cell_present(self, small_grid):
        de = small_grid.cell("WCC", "tiny", "DE", 4)
        assert de.policy == "-"

    def test_missing_cell_raises(self, small_grid):
        with pytest.raises(KeyError):
            small_grid.cell("WCC", "tiny", "NE", 99, "lock")

    def test_render_mentions_panel(self, small_grid):
        assert "WCC on tiny" in small_grid.render()

    def test_iterations_measured_not_modeled(self, small_grid):
        ne_rows = [r for r in small_grid.panel("WCC", "tiny") if r.mode == "NE"]
        # all three pricings of one run share its measured iteration count
        by_threads = {}
        for r in ne_rows:
            by_threads.setdefault(r.threads, set()).add(r.iterations)
        for iters in by_threads.values():
            assert len(iters) == 1


class TestVarianceExperiments:
    def test_paper_epsilons(self):
        assert PAPER_EPSILONS == (0.1, 0.01, 0.001)

    def test_table2_structure(self):
        res = run_table2(scale=7, runs=2, epsilons=(0.1,))
        table = res.table()
        assert 0.1 in table
        assert set(table[0.1]) == {
            "DE vs. DE", "4NE vs. 4NE", "8NE vs. 8NE", "16NE vs. 16NE",
        }
        assert "Table II" in res.render()

    def test_table3_structure(self):
        from repro.experiments import run_table3

        res = run_table3(scale=7, runs=2, epsilons=(0.1,))
        table = res.table()
        assert "DE vs. 4NE" in table[0.1]
        assert "4NE vs. 16NE" in table[0.1]
        assert "Table III" in res.render()


class TestAblations:
    def test_delay_sweep_rows(self):
        res = run_delay_sweep(scale=7, delays=(1, 4), seeds=(0,))
        assert len(res.rows) == 2
        assert res.rows[0]["delay d"] == 1

    def test_torn_study_detects_corruption(self):
        res = run_torn_study(scale=9, seeds=(0, 1, 2))
        assert any(row["corrupted"] for row in res.rows)

    def test_dispatch_study_rows(self):
        res = run_dispatch_study(scale=7, seeds=(0,))
        assert len(res.rows) == 4
        dispatches = {row["dispatch"] for row in res.rows}
        assert dispatches == {"block", "round-robin"}
