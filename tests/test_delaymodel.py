"""Tests for pairwise delay models (NUMA / distributed relaxation)."""

import numpy as np
import pytest

from repro.algorithms import BFS, WeaklyConnectedComponents, reference
from repro.engine import DelayModel, EngineConfig, run
from repro.graph import generators


class TestDelayModel:
    def test_uniform(self):
        m = DelayModel.uniform(3.0)
        assert m.delay(0, 1) == 3.0
        assert m.delay(5, 2) == 3.0
        assert m.max_delay == 3.0

    def test_numa_groups(self):
        m = DelayModel.numa(4, intra=2.0, inter=8.0)
        assert m.group(0) == m.group(3) == 0
        assert m.group(4) == 1
        assert m.delay(0, 3) == 2.0
        assert m.delay(0, 4) == 8.0
        assert m.max_delay == 8.0

    def test_distributed(self):
        m = DelayModel.distributed(2, intra=1.0, network=64.0)
        assert m.delay(0, 1) == 1.0
        assert m.delay(1, 2) == 64.0

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            DelayModel(intra=0.5)
        with pytest.raises(ValueError, match="inter-group"):
            DelayModel(intra=4.0, inter=2.0)
        with pytest.raises(ValueError):
            DelayModel.numa(0)
        with pytest.raises(ValueError):
            DelayModel.distributed(0)

    def test_config_default_is_uniform(self):
        cfg = EngineConfig(delay=3.0)
        m = cfg.effective_delay_model()
        assert m.delay(0, 7) == 3.0

    def test_config_explicit_model_wins(self):
        model = DelayModel.numa(2, intra=1.0, inter=16.0)
        cfg = EngineConfig(delay=3.0, delay_model=model)
        assert cfg.effective_delay_model() is model


class TestEnginesUnderRelaxedDelays:
    @pytest.mark.parametrize("model", [
        DelayModel.uniform(2.0),
        DelayModel.numa(2, intra=1.0, inter=8.0),
        DelayModel.distributed(4, intra=2.0, network=64.0),
    ], ids=["uniform", "numa", "distributed"])
    @pytest.mark.parametrize("mode", ["nondeterministic", "pure-async"])
    def test_wcc_exact_under_any_delay_topology(self, rmat_small, model, mode):
        truth = reference.wcc_reference(rmat_small)
        res = run(WeaklyConnectedComponents(), rmat_small, mode=mode,
                  config=EngineConfig(threads=8, delay_model=model, seed=1))
        assert res.converged
        assert np.array_equal(res.result(), truth)

    def test_cross_machine_delay_costs_staleness(self):
        """A slow network produces more stale reads than a flat machine."""
        g = generators.erdos_renyi(400, 1600, seed=3)
        flat = run(BFS(source=0), g, mode="nondeterministic",
                   config=EngineConfig(threads=8,
                                       delay_model=DelayModel.uniform(2.0), seed=0))
        dist = run(BFS(source=0), g, mode="nondeterministic",
                   config=EngineConfig(threads=8,
                                       delay_model=DelayModel.distributed(2, network=48.0),
                                       seed=0))
        assert dist.conflicts.stale_reads > flat.conflicts.stale_reads
        # ... but the distances are still exact (Theorem 1 survives the
        # relaxation)
        truth = reference.bfs_reference(g, 0)
        assert np.array_equal(flat.result(), truth)
        assert np.array_equal(dist.result(), truth)
