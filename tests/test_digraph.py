"""Unit tests for the CSR directed graph."""

import numpy as np
import pytest

from repro.graph import DiGraph


def make_triangle() -> DiGraph:
    # 0 -> 1, 1 -> 2, 2 -> 0
    return DiGraph(3, [0, 1, 2], [1, 2, 0])


class TestConstruction:
    def test_sizes(self):
        g = make_triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert len(g) == 3

    def test_empty_graph(self):
        g = DiGraph(0, [], [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        g.validate()

    def test_vertices_without_edges(self):
        g = DiGraph(5, [0], [1])
        assert g.num_vertices == 5
        assert g.out_degree(4) == 0
        assert g.in_degree(4) == 0
        g.validate()

    def test_edges_sorted_canonically(self):
        g = DiGraph(3, [2, 0, 1], [0, 1, 2])
        assert g.edge_src.tolist() == [0, 1, 2]
        assert g.edge_dst.tolist() == [1, 2, 0]

    def test_parallel_edges_allowed(self):
        g = DiGraph(2, [0, 0], [1, 1])
        assert g.num_edges == 2
        assert g.out_degree(0) == 2
        g.validate()

    def test_self_loop_allowed(self):
        g = DiGraph(2, [0], [0])
        assert g.out_degree(0) == 1
        assert g.in_degree(0) == 1
        g.validate()

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            DiGraph(3, [-1], [0])

    def test_too_large_vertex_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            DiGraph(3, [0], [3])

    def test_negative_num_vertices_rejected(self):
        with pytest.raises(ValueError, match="num_vertices"):
            DiGraph(-1, [], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            DiGraph(3, [0, 1], [1])

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            DiGraph(3, [[0], [1]], [[1], [2]])


class TestAdjacency:
    def test_out_edges(self):
        g = make_triangle()
        nbrs, eids = g.out_edges(0)
        assert nbrs.tolist() == [1]
        assert eids.tolist() == [0]

    def test_in_edges(self):
        g = make_triangle()
        nbrs, eids = g.in_edges(0)
        assert nbrs.tolist() == [2]
        assert g.edge_endpoints(int(eids[0])) == (2, 0)

    def test_degrees(self):
        g = make_triangle()
        for v in range(3):
            assert g.out_degree(v) == 1
            assert g.in_degree(v) == 1
            assert g.degree(v) == 2

    def test_degree_vectors(self):
        g = DiGraph(3, [0, 0, 1], [1, 2, 2])
        assert g.out_degrees().tolist() == [2, 1, 0]
        assert g.in_degrees().tolist() == [0, 1, 2]

    def test_neighbors_union(self):
        g = DiGraph(4, [0, 1, 2], [1, 0, 1])
        assert g.neighbors(1).tolist() == [0, 2]

    def test_incident_eids_cover_scope(self):
        g = make_triangle()
        eids = g.incident_eids(1)
        endpoints = {g.edge_endpoints(int(e)) for e in eids}
        assert endpoints == {(0, 1), (1, 2)}

    def test_vertex_out_of_range(self):
        g = make_triangle()
        with pytest.raises(IndexError):
            g.out_edges(3)
        with pytest.raises(IndexError):
            g.in_degree(-1)

    def test_out_neighbors_sorted(self):
        g = DiGraph(4, [0, 0, 0], [3, 1, 2])
        assert g.out_neighbors(0).tolist() == [1, 2, 3]


class TestEdgeLookup:
    def test_has_edge(self):
        g = make_triangle()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edge_id_roundtrip(self):
        g = make_triangle()
        for e in range(g.num_edges):
            u, v = g.edge_endpoints(e)
            assert g.edge_id(u, v) == e

    def test_edge_id_missing(self):
        g = make_triangle()
        with pytest.raises(KeyError):
            g.edge_id(1, 0)

    def test_edge_endpoints_out_of_range(self):
        g = make_triangle()
        with pytest.raises(IndexError):
            g.edge_endpoints(3)

    def test_iter_edges(self):
        g = make_triangle()
        edges = list(g.iter_edges())
        assert edges == [(0, 0, 1), (1, 1, 2), (2, 2, 0)]


class TestDerived:
    def test_reverse(self):
        g = make_triangle()
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert not r.has_edge(0, 1)
        r.validate()

    def test_reverse_twice_identity(self):
        g = DiGraph(5, [0, 2, 4, 1], [1, 3, 0, 4])
        assert g.reverse().reverse() == g

    def test_as_undirected_pairs_dedups(self):
        g = DiGraph(3, [0, 1, 1], [1, 0, 2])
        pairs = g.as_undirected_pairs()
        assert pairs.tolist() == [[0, 1], [1, 2]]

    def test_equality_and_hash(self):
        a = make_triangle()
        b = DiGraph(3, [2, 1, 0], [0, 2, 1])  # same edges, different order
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = make_triangle()
        b = DiGraph(3, [0, 1, 2], [1, 2, 1])
        assert a != b
        assert a != "not a graph"
