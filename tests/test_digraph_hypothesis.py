"""Property-based tests for the CSR graph invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph

# A random small digraph as (n, list-of-edges).
graphs = st.integers(min_value=1, max_value=24).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=80,
        ),
    )
)


def build(n, edges) -> DiGraph:
    src = [u for u, _ in edges]
    dst = [v for _, v in edges]
    return DiGraph(n, src, dst)


@given(graphs)
def test_internal_invariants(data):
    n, edges = data
    g = build(n, edges)
    g.validate()


@given(graphs)
def test_degree_sums_equal_edge_count(data):
    n, edges = data
    g = build(n, edges)
    assert int(g.out_degrees().sum()) == g.num_edges
    assert int(g.in_degrees().sum()) == g.num_edges


@given(graphs)
def test_out_edges_consistent_with_endpoints(data):
    n, edges = data
    g = build(n, edges)
    for v in range(n):
        nbrs, eids = g.out_edges(v)
        for w, e in zip(nbrs.tolist(), eids.tolist()):
            assert g.edge_endpoints(e) == (v, w)


@given(graphs)
def test_in_edges_consistent_with_endpoints(data):
    n, edges = data
    g = build(n, edges)
    for v in range(n):
        nbrs, eids = g.in_edges(v)
        for u, e in zip(nbrs.tolist(), eids.tolist()):
            assert g.edge_endpoints(e) == (u, v)


@given(graphs)
def test_reverse_swaps_degrees(data):
    n, edges = data
    g = build(n, edges)
    r = g.reverse()
    assert np.array_equal(g.out_degrees(), r.in_degrees())
    assert np.array_equal(g.in_degrees(), r.out_degrees())


@given(graphs)
def test_multiset_of_edges_preserved(data):
    n, edges = data
    g = build(n, edges)
    original = sorted(edges)
    stored = sorted(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
    assert original == stored


@given(graphs)
@settings(max_examples=50)
def test_has_edge_matches_edge_list(data):
    n, edges = data
    g = build(n, edges)
    edge_set = set(edges)
    for u in range(min(n, 8)):
        for v in range(min(n, 8)):
            assert g.has_edge(u, v) == ((u, v) in edge_set)


@given(graphs)
def test_incident_eids_are_in_plus_out(data):
    n, edges = data
    g = build(n, edges)
    for v in range(n):
        eids = sorted(g.incident_eids(v).tolist())
        expected = sorted(
            [e for e, (u, w) in enumerate(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
             if u == v]
            + [e for e, (u, w) in enumerate(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
               if w == v]
        )
        assert eids == expected
