"""Direction-optimizing push/pull hybrid: bit-identity and heuristics.

The hybrid never changes *what* executes — an iteration run in the
sparse push direction performs the same racy Defs. 1–3 iteration over
the frontier's touched edges that the dense pull direction performs
over all of them.  Every observable (final state, trajectory, conflict
totals, fix-point pass counts, recorder provenance) must therefore be
bit-identical across directions and backends per (mode, seed); the
direction decision itself is a pure function of (frontier, graph,
config).  These tests pin that contract plus the eligibility gate and
the runner/bench plumbing.
"""

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, PageRank, SpMV, WeaklyConnectedComponents
from repro.engine import EngineConfig, run
from repro.engine.nondet_vectorized import (
    DIRECTIONS,
    choose_direction,
    push_fallback_reasons,
)
from repro.graph import generators
from repro.obs import Recorder, Telemetry

from .test_nondet_vectorized import assert_bit_identical

PUSH_ELIGIBLE = {
    "wcc": WeaklyConnectedComponents,
    "sssp": lambda: SSSP(source=0),
    "bfs": lambda: BFS(source=0),
}

PULL_ONLY = {
    "pagerank": lambda: PageRank(epsilon=1e-3),
    "spmv": SpMV,
}


@pytest.fixture(scope="module")
def medium_graph():
    return generators.rmat(7, 8.0, seed=3)


def run_direction(factory, graph, config, direction, **kwargs):
    return run(factory(), graph, mode="nondeterministic", config=config,
               vectorized="require", direction=direction, **kwargs)


# ---------------------------------------------------------------------------
# bit-identity grid: direction x backend x seed
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("algo", sorted(PUSH_ELIGIBLE))
@pytest.mark.parametrize("seed", [0, 3])
def test_bit_identity_across_directions(medium_graph, algo, seed):
    """pull == push == auto == the interpreting object engine, exactly."""
    config = EngineConfig(threads=4, seed=seed, jitter=0.5)
    factory = PUSH_ELIGIBLE[algo]
    obj = run(factory(), medium_graph, mode="nondeterministic", config=config)
    runs = {d: run_direction(factory, medium_graph, config, d)
            for d in DIRECTIONS}
    for d, res in runs.items():
        assert_bit_identical(obj, res)
        assert (res.extra["fixpoint_passes"]
                == runs["pull"].extra["fixpoint_passes"]), d
    # The forced-push run must actually have pushed; auto reports its
    # per-iteration decisions.
    assert runs["push"].extra["push_iterations"] == runs["push"].num_iterations
    trace = runs["auto"].extra["direction_trace"]
    assert len(trace) == runs["auto"].num_iterations
    assert set(trace) <= {"push", "pull"}
    assert runs["auto"].extra["push_iterations"] == trace.count("push")
    # pull (the default) advertises no direction bookkeeping at all.
    assert "direction" not in runs["pull"].extra


@pytest.mark.parametrize("algo", sorted(PUSH_ELIGIBLE))
def test_recorder_parity_across_directions(medium_graph, algo):
    """Race provenance is byte-identical: same events, same order."""
    config = EngineConfig(threads=4, seed=1, jitter=0.5)
    recorders = {}
    for d in ("pull", "push", "auto"):
        rec = Recorder()
        run_direction(PUSH_ELIGIBLE[algo], medium_graph, config, d, record=rec)
        recorders[d] = rec
    assert recorders["pull"].events, "expected recorded races on rmat-7"
    assert recorders["push"].events == recorders["pull"].events
    assert recorders["auto"].events == recorders["pull"].events


@pytest.mark.parallel_backend
@pytest.mark.parametrize("algo", sorted(PUSH_ELIGIBLE))
@pytest.mark.parametrize("direction", ["push", "auto"])
def test_process_backend_direction_bit_identical(medium_graph, algo, direction):
    """The process backend honours direction= with the same bits, and
    its per-iteration decisions match the single-process engine's."""
    config = EngineConfig(threads=2, seed=0, jitter=0.5)
    vec = run_direction(PUSH_ELIGIBLE[algo], medium_graph, config, "pull")
    rec = Recorder()
    rec_vec = Recorder()
    run_direction(PUSH_ELIGIBLE[algo], medium_graph, config, direction,
                  record=rec_vec)
    proc = run(PUSH_ELIGIBLE[algo](), medium_graph, mode="nondeterministic",
               config=config, backend="process", direction=direction,
               record=rec)
    assert_bit_identical(vec, proc)
    assert rec.events == rec_vec.events
    vec_d = run_direction(PUSH_ELIGIBLE[algo], medium_graph, config, direction)
    assert proc.extra["direction_trace"] == vec_d.extra["direction_trace"]
    assert proc.extra["push_iterations"] == vec_d.extra["push_iterations"]


# ---------------------------------------------------------------------------
# the heuristic: pure, thresholded, logged
# ---------------------------------------------------------------------------

class TestChooseDirection:
    def _args(self, active, config):
        n, m = 100, 1000
        out_deg = np.full(n, 5, dtype=np.int64)
        in_deg = np.full(n, 5, dtype=np.int64)
        return (np.asarray(active, dtype=np.int64), out_deg, in_deg,
                m, n, config)

    def test_forced_directions(self):
        config = EngineConfig()
        ids, od, idg, m, n, cfg = self._args([0, 1], config)
        assert choose_direction("pull", ids, od, idg, m, n, cfg, True) == "pull"
        assert choose_direction("push", ids, od, idg, m, n, cfg, True) == "push"
        # Ineligibility pins pull no matter what was asked for upstream.
        assert choose_direction("auto", ids, od, idg, m, n, cfg, False) == "pull"

    def test_auto_thresholds(self):
        config = EngineConfig()
        # 2 active vertices: touched mass = 2*(5+5) = 20; 20*14 < 1000
        # and 2*24 < 100 -> push.
        ids, od, idg, m, n, cfg = self._args([0, 1], config)
        assert choose_direction("auto", ids, od, idg, m, n, cfg, True) == "push"
        # 5 active: 5*24 >= 100 fails the beta gate -> pull.
        ids, od, idg, m, n, cfg = self._args([0, 1, 2, 3, 4], config)
        assert choose_direction("auto", ids, od, idg, m, n, cfg, True) == "pull"

    def test_alpha_gate(self):
        # Tighten alpha until the edge-mass gate rejects the same frontier.
        strict = EngineConfig(direction_alpha=1000.0)
        ids, od, idg, m, n, cfg = self._args([0, 1], strict)
        assert choose_direction("auto", ids, od, idg, m, n, cfg, True) == "pull"

    def test_pure_function(self):
        config = EngineConfig()
        args = self._args([0, 1, 2], config)
        first = choose_direction("auto", *args, True)
        assert all(choose_direction("auto", *args, True) == first
                   for _ in range(5))

    def test_config_validates_thresholds(self):
        with pytest.raises(ValueError, match="direction_alpha"):
            EngineConfig(direction_alpha=0.0)
        with pytest.raises(ValueError, match="direction_beta"):
            EngineConfig(direction_beta=-1.0)


def test_forced_switch_trace(medium_graph):
    """A hybrid run that actually switches logs every decision in its
    telemetry spans and reproduces the same trace on rerun."""
    # Generous thresholds make the shrinking frontier cross into push
    # territory mid-run.
    config = EngineConfig(threads=4, seed=0, jitter=0.5,
                          direction_alpha=1.0, direction_beta=1.0)

    def one_run():
        sink = Telemetry()
        res = run_direction(PUSH_ELIGIBLE["wcc"], medium_graph, config,
                            "auto", telemetry=sink)
        return res, [s.extra["direction"] for s in sink.spans]

    res_a, spans_a = one_run()
    res_b, spans_b = one_run()
    assert spans_a == res_a.extra["direction_trace"]
    assert spans_a == spans_b
    assert "push" in spans_a and "pull" in spans_a, (
        "expected a mid-run direction switch; got " + " ".join(spans_a))
    assert_bit_identical(res_a, res_b)


# ---------------------------------------------------------------------------
# eligibility gate + runner plumbing
# ---------------------------------------------------------------------------

class TestEligibilityGate:
    @pytest.mark.parametrize("algo", sorted(PUSH_ELIGIBLE))
    def test_min_combine_kernels_eligible(self, algo):
        assert push_fallback_reasons(PUSH_ELIGIBLE[algo]()) == []

    @pytest.mark.parametrize("algo", sorted(PULL_ONLY))
    def test_pull_only_kernels_report_why(self, algo):
        reasons = push_fallback_reasons(PULL_ONLY[algo]())
        assert reasons
        assert any("push_combines" in r or "idempotent" in r for r in reasons)

    def test_push_direction_raises_for_ineligible(self, medium_graph):
        with pytest.raises(ValueError, match="not eligible for the push"):
            run_direction(PULL_ONLY["pagerank"], medium_graph,
                          EngineConfig(), "push")

    def test_auto_pins_pull_for_ineligible(self, medium_graph):
        config = EngineConfig(threads=4, seed=0, jitter=0.5)
        pull = run_direction(PULL_ONLY["pagerank"], medium_graph, config,
                             "pull")
        auto = run_direction(PULL_ONLY["pagerank"], medium_graph, config,
                             "auto")
        assert_bit_identical(pull, auto)
        assert auto.extra["push_iterations"] == 0
        assert set(auto.extra["direction_trace"]) == {"pull"}


class TestRunnerPlumbing:
    def test_unknown_direction(self, medium_graph):
        with pytest.raises(ValueError, match="direction='sideways'"):
            run(WeaklyConnectedComponents(), medium_graph,
                mode="nondeterministic", direction="sideways")

    def test_direction_requires_nondet_mode(self, medium_graph):
        with pytest.raises(ValueError, match="nondeterministic"):
            run(WeaklyConnectedComponents(), medium_graph, mode="sync",
                direction="auto")

    def test_direction_rejects_fault_kwargs(self, medium_graph):
        with pytest.raises(ValueError, match="fault-tolerance"):
            run(WeaklyConnectedComponents(), medium_graph,
                mode="nondeterministic", direction="auto", faults="crash@1")

    def test_direction_implies_fast_path(self, medium_graph):
        """Without vectorized=/backend=, a non-default direction routes
        through the fast path instead of silently running the object
        engine (which has no dense/sparse distinction)."""
        res = run(WeaklyConnectedComponents(), medium_graph,
                  mode="nondeterministic", direction="auto")
        assert res.extra.get("vectorized") is True
        assert "direction_trace" in res.extra


def test_bench_suite_emits_hybrid_cells():
    from repro.experiments.benchtrack import run_nondet_suite

    results = run_nondet_suite(scales=(6,), direction="auto")
    assert results["direction"] == "auto"
    cells = results["scales"]["6"]["algorithms"]
    for name in PUSH_ELIGIBLE:
        assert "vectorized_auto" in cells[name], name
        assert cells[name]["direction_speedup"] > 0
        assert cells[name]["vectorized_auto"]["converged"]
    for name in PULL_ONLY:
        assert "vectorized_auto" not in cells[name], name
