"""Tests for the Fig. 1 dispatch of updates onto threads."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import DispatchPolicy, make_plan


class TestBlockDispatch:
    def test_fig1_layout(self):
        """π(v) = L_v mod (V/P) for a full, divisible active set (Fig. 1)."""
        V, P = 12, 3
        plan = make_plan(np.arange(V), P)
        for v in range(V):
            slot = plan.slots[v]
            assert slot.pi == v % (V // P)
            assert slot.thread == v // (V // P)

    def test_non_divisible_remainder_spread(self):
        plan = make_plan(np.arange(10), 4)
        sizes = [len(t) for t in plan.per_thread]
        assert sizes == [3, 3, 2, 2]

    def test_threads_exceed_tasks(self):
        plan = make_plan(np.arange(2), 8)
        sizes = [len(t) for t in plan.per_thread]
        assert sizes == [1, 1, 0, 0, 0, 0, 0, 0]

    def test_small_label_first_within_thread(self):
        plan = make_plan(np.array([3, 5, 9, 11, 20, 21]), 2)
        for worklist in plan.per_thread:
            assert worklist == sorted(worklist)

    def test_pure_times_equal_pi(self):
        plan = make_plan(np.arange(6), 2)
        for slot in plan.slots.values():
            assert slot.time == float(slot.pi)

    def test_empty_active_set(self):
        plan = make_plan(np.array([], dtype=np.int64), 4)
        assert plan.slots == {}
        assert plan.execution_order() == []


class TestRoundRobin:
    def test_cyclic_assignment(self):
        plan = make_plan(np.arange(8), 3, policy=DispatchPolicy.ROUND_ROBIN)
        assert plan.slots[0].thread == 0
        assert plan.slots[1].thread == 1
        assert plan.slots[2].thread == 2
        assert plan.slots[3].thread == 0
        assert plan.slots[3].pi == 1

    def test_per_thread_lists(self):
        plan = make_plan(np.arange(7), 2, policy=DispatchPolicy.ROUND_ROBIN)
        assert plan.per_thread[0] == [0, 2, 4, 6]
        assert plan.per_thread[1] == [1, 3, 5]


class TestJitter:
    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            make_plan(np.arange(4), 2, jitter=0.5)

    def test_jitter_bounds(self):
        rng = np.random.default_rng(0)
        plan = make_plan(np.arange(100), 4, jitter=0.5, rng=rng)
        for slot in plan.slots.values():
            assert slot.pi <= slot.time < slot.pi + 0.5

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            make_plan(np.arange(4), 2, jitter=-0.1)

    def test_jitter_reproducible_from_seed(self):
        p1 = make_plan(np.arange(20), 4, jitter=0.9, rng=np.random.default_rng(5))
        p2 = make_plan(np.arange(20), 4, jitter=0.9, rng=np.random.default_rng(5))
        assert all(p1.slots[v].time == p2.slots[v].time for v in range(20))

    @given(st.integers(1, 6), st.integers(0, 40), st.integers(0, 2**31))
    def test_same_thread_order_preserved_under_jitter(self, threads, n, seed):
        """jitter < 1 never reorders tasks within a thread."""
        rng = np.random.default_rng(seed)
        plan = make_plan(np.arange(n), threads, jitter=0.999, rng=rng)
        for worklist in plan.per_thread:
            times = [plan.slots[v].time for v in worklist]
            assert times == sorted(times)


class TestExecutionOrder:
    def test_total_and_deterministic(self):
        rng = np.random.default_rng(3)
        plan = make_plan(np.arange(30), 4, jitter=0.5, rng=rng)
        order = plan.execution_order()
        assert sorted(order) == list(range(30))
        times = [plan.slots[v].time for v in order]
        assert times == sorted(times)

    def test_invalid_threads(self):
        with pytest.raises(ValueError, match="num_threads"):
            make_plan(np.arange(4), 0)
