"""Edge cases across all executors: degenerate graphs and extreme configs."""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    SSSP,
    PageRank,
    SpMV,
    WeaklyConnectedComponents,
    reference,
)
from repro.engine import AtomicityPolicy, DispatchPolicy, EngineConfig, run
from repro.graph import DiGraph, generators

ALL_MODES = ["sync", "deterministic", "chromatic", "nondeterministic", "pure-async"]


class TestDegenerateGraphs:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_empty_graph(self, mode):
        g = DiGraph(0, [], [])
        res = run(WeaklyConnectedComponents(), g, mode=mode, threads=2)
        assert res.converged
        assert res.result().size == 0

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_single_vertex(self, mode):
        g = DiGraph(1, [], [])
        res = run(WeaklyConnectedComponents(), g, mode=mode, threads=4)
        assert res.converged
        assert res.result().tolist() == [0.0]

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_edgeless_vertices(self, mode):
        g = DiGraph(5, [], [])
        res = run(PageRank(epsilon=1e-3), g, mode=mode, threads=2)
        assert res.converged
        assert np.allclose(res.result(), 0.15, atol=1e-5)

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_self_loop_only(self, mode):
        g = DiGraph(2, [0], [0])
        res = run(WeaklyConnectedComponents(), g, mode=mode, threads=2)
        assert res.converged
        assert res.result().tolist() == [0.0, 1.0]

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_parallel_edges(self, mode):
        g = DiGraph(2, [0, 0, 0], [1, 1, 1])
        res = run(BFS(source=0), g, mode=mode, threads=2)
        assert res.result().tolist() == [0.0, 1.0]

    def test_wcc_on_self_loop_heavy_graph(self):
        g = DiGraph(3, [0, 1, 1, 2], [0, 1, 2, 2])
        res = run(WeaklyConnectedComponents(), g, mode="nondeterministic",
                  threads=2, seed=0)
        assert res.result().tolist() == [0.0, 1.0, 1.0]


class TestExtremeConfigs:
    def test_more_threads_than_vertices(self, path8):
        res = run(WeaklyConnectedComponents(), path8, mode="nondeterministic",
                  config=EngineConfig(threads=64, seed=0))
        assert res.converged
        assert np.all(res.result() == 0.0)

    def test_huge_delay(self, path8):
        res = run(BFS(source=0), path8, mode="nondeterministic",
                  config=EngineConfig(threads=4, delay=1e6, seed=0))
        assert res.converged
        assert np.array_equal(res.result(), reference.bfs_reference(path8, 0))

    def test_delay_exactly_one(self, path8):
        res = run(BFS(source=0), path8, mode="nondeterministic",
                  config=EngineConfig(threads=4, delay=1.0, seed=0))
        assert res.converged

    def test_zero_jitter_reproducible_across_seeds(self, rmat_small):
        """With jitter disabled the seed is irrelevant to the schedule."""
        a = run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
                config=EngineConfig(threads=4, jitter=0.0, seed=1))
        b = run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
                config=EngineConfig(threads=4, jitter=0.0, seed=999))
        assert np.array_equal(a.result(), b.result())
        assert a.conflicts.summary() == b.conflicts.summary()

    def test_round_robin_dispatch_everywhere(self, rmat_small):
        truth = reference.wcc_reference(rmat_small)
        res = run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=0,
                                      dispatch=DispatchPolicy.ROUND_ROBIN))
        assert np.array_equal(res.result(), truth)

    def test_max_iterations_one(self, rmat_small):
        res = run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
                  config=EngineConfig(threads=4, seed=0, max_iterations=1))
        assert not res.converged
        assert res.num_iterations == 1

    def test_torn_probability_zero_is_exact(self):
        g = generators.erdos_renyi(128, 512, seed=4)
        prog = SSSP(source=0)
        truth = reference.sssp_reference(g, 0, prog.make_weights(g))
        res = run(SSSP(source=0), g, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=0,
                                      atomicity=AtomicityPolicy.NONE,
                                      torn_probability=0.0))
        assert np.array_equal(res.result(), truth)


class TestStateReuseAndIsolation:
    def test_runs_do_not_share_state(self, rmat_small):
        """Two runs of the same program object get independent states."""
        prog = WeaklyConnectedComponents()
        a = run(prog, rmat_small, mode="deterministic")
        b = run(prog, rmat_small, mode="deterministic")
        assert a.state is not b.state
        assert np.array_equal(a.result(), b.result())

    def test_graph_not_mutated_by_runs(self, rmat_small):
        before = (rmat_small.edge_src.copy(), rmat_small.edge_dst.copy())
        run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
            threads=8, seed=0)
        assert np.array_equal(rmat_small.edge_src, before[0])
        assert np.array_equal(rmat_small.edge_dst, before[1])

    def test_spmv_empty_graph(self):
        g = DiGraph(0, [], [])
        res = run(SpMV(), g, mode="deterministic")
        assert res.converged
