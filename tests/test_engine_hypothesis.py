"""Property-based tests of the engine-level theorems on random inputs.

These are the library's strongest correctness evidence: for *arbitrary*
small graphs and arbitrary engine configurations, the paper's claims
must hold — WCC and SSSP reach their exact fixed points regardless of
schedule, conflicts match the declared profiles, and runs are pure
functions of their configuration.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import BFS, SSSP, WeaklyConnectedComponents, reference
from repro.engine import EngineConfig, run
from repro.graph import DiGraph


@st.composite
def graph_and_config(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    m = draw(st.integers(min_value=1, max_value=40))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    src = [u for u, _ in edges]
    dst = [v for _, v in edges]
    graph = DiGraph(n, src, dst)
    config = EngineConfig(
        threads=draw(st.integers(1, 6)),
        delay=float(draw(st.integers(1, 4))),
        jitter=draw(st.sampled_from([0.0, 0.3, 0.9])),
        seed=draw(st.integers(0, 1_000)),
    )
    return graph, config


COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(graph_and_config())
@settings(**COMMON)
def test_wcc_exact_on_arbitrary_graphs_and_schedules(data):
    graph, config = data
    truth = reference.wcc_reference(graph)
    res = run(WeaklyConnectedComponents(), graph, mode="nondeterministic", config=config)
    assert res.converged
    assert np.array_equal(res.result(), truth)


@given(graph_and_config())
@settings(**COMMON)
def test_bfs_exact_on_arbitrary_graphs_and_schedules(data):
    graph, config = data
    truth = reference.bfs_reference(graph, 0)
    res = run(BFS(source=0), graph, mode="nondeterministic", config=config)
    assert res.converged
    assert np.array_equal(res.result(), truth)


@given(graph_and_config())
@settings(**COMMON)
def test_sssp_exact_on_arbitrary_graphs_and_schedules(data):
    graph, config = data
    prog = SSSP(source=0)
    truth = reference.sssp_reference(graph, 0, prog.make_weights(graph))
    res = run(SSSP(source=0), graph, mode="nondeterministic", config=config)
    assert res.converged
    assert np.array_equal(res.result(), truth)


@given(graph_and_config())
@settings(**COMMON)
def test_sssp_conflict_profile_never_write_write(data):
    graph, config = data
    res = run(SSSP(source=0), graph, mode="nondeterministic", config=config)
    assert res.conflicts.write_write == 0


@given(graph_and_config())
@settings(**COMMON)
def test_runs_are_pure_functions_of_config(data):
    graph, config = data
    a = run(WeaklyConnectedComponents(), graph, mode="nondeterministic", config=config)
    b = run(WeaklyConnectedComponents(), graph, mode="nondeterministic", config=config)
    assert np.array_equal(a.result(), b.result())
    assert a.conflicts.summary() == b.conflicts.summary()
    assert [s.num_active for s in a.iterations] == [s.num_active for s in b.iterations]


@given(graph_and_config())
@settings(**COMMON)
def test_deterministic_engine_ignores_schedule_knobs(data):
    graph, config = data
    a = run(WeaklyConnectedComponents(), graph, mode="deterministic", config=config)
    b = run(WeaklyConnectedComponents(), graph, mode="deterministic",
            config=EngineConfig())
    assert np.array_equal(a.result(), b.result())
    assert a.num_iterations == b.num_iterations


@given(graph_and_config())
@settings(**COMMON)
def test_task_generation_rule_schedules_written_endpoints(data):
    """Every vertex scheduled into S_{n+1} was the far endpoint of a
    written edge in iteration n (the §II task-generation rule)."""
    graph, config = data
    schedules: list[set[int]] = []

    def observer(iteration, state, next_schedule):
        schedules.append(set(next_schedule))

    run(WeaklyConnectedComponents(), graph, mode="nondeterministic",
        config=config, observer=observer)
    incident = [set() for _ in range(graph.num_vertices)]
    for e, u, v in graph.iter_edges():
        incident[u].add(v)
        incident[v].add(u)
    all_endpoints = set(range(graph.num_vertices))
    for sched in schedules:
        # scheduled vertices must at least be adjacent to something
        for v in sched:
            assert v in all_endpoints
            assert incident[v], "an isolated vertex can never be re-scheduled"
