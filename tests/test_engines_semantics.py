"""Behavioural tests of the three executors' visibility semantics.

Uses a tiny "relay" probe program on a directed path so that the exact
values observed by each update expose which writes were visible: BSP
must advance one hop per iteration, Gauss–Seidel must cascade a full
sweep in one iteration, and the nondeterministic engine must sit in
between exactly as Definitions 1–3 dictate for the dispatch at hand.
"""

from typing import Mapping

import numpy as np
import pytest

from repro.engine import (
    AlgorithmTraits,
    ConflictProfile,
    EngineConfig,
    FieldSpec,
    UpdateContext,
    VertexProgram,
    run,
)
from repro.graph import DiGraph, generators


class Relay(VertexProgram):
    """Token count propagation along a directed path.

    ``f(v)`` adopts the value on its in-edge and forwards ``value + 1``
    on its out-edge if that increases the edge.  On the directed path
    ``0 -> 1 -> ... -> n-1`` the converged vertex values are
    ``0, 1, 2, ..., n-1``; the number of iterations needed reveals how
    far values travelled within each iteration.
    """

    def __init__(self):
        self.traits = AlgorithmTraits(
            name="Relay",
            conflict_profile=ConflictProfile.READ_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"val": FieldSpec(np.float64, 0.0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        return {"msg": FieldSpec(np.float64, -1.0)}

    def update(self, ctx: UpdateContext) -> None:
        best = float(ctx.get("val"))
        for eid in ctx.in_edges()[1].tolist():
            best = max(best, ctx.read_edge(eid, "msg"))
        ctx.set("val", best)
        for eid in ctx.out_edges()[1].tolist():
            if ctx.read_edge(eid, "msg") < best + 1:
                ctx.write_edge(eid, "msg", best + 1)


def directed_path(n: int) -> DiGraph:
    return generators.path_graph(n, undirected=False)


def expected(n: int) -> list[float]:
    return [float(i) for i in range(n)]


class TestSynchronousSemantics:
    def test_one_hop_per_iteration(self):
        n = 10
        res = run(Relay(), directed_path(n), mode="sync", threads=2)
        assert res.converged
        assert res.result().tolist() == expected(n)
        # BSP: iteration k moves the token one hop; converging the whole
        # path takes ~n iterations (plus the final empty check).
        assert res.num_iterations >= n - 1

    def test_reads_see_previous_iteration_only(self):
        observed = []

        class Spy(Relay):
            def update(self, ctx):
                if ctx.vid == 2:
                    observed.append(ctx.read_edge(ctx.in_edges()[1][0], "msg"))
                super().update(ctx)

        run(Spy(), directed_path(4), mode="sync", threads=1)
        # First iteration: vertex 2 must still see the initial value even
        # though vertex 1 wrote the edge in the same iteration.
        assert observed[0] == -1.0

    def test_bit_reproducible(self):
        a = run(Relay(), directed_path(8), mode="sync", threads=4)
        b = run(Relay(), directed_path(8), mode="sync", threads=4)
        assert np.array_equal(a.result(), b.result())
        assert a.num_iterations == b.num_iterations


class TestGaussSeidelSemantics:
    def test_full_cascade_in_one_iteration(self):
        n = 16
        res = run(Relay(), directed_path(n), mode="deterministic")
        assert res.converged
        assert res.result().tolist() == expected(n)
        # Ascending label order lets the whole path relax in iteration 0;
        # iteration 1 generates no writes; done after 2.
        assert res.num_iterations == 2

    def test_no_conflicts_ever(self, rmat_small):
        from repro.algorithms import WeaklyConnectedComponents

        res = run(WeaklyConnectedComponents(), rmat_small, mode="deterministic")
        assert res.conflicts.total == 0

    def test_descending_path_needs_many_iterations(self):
        # Reverse the path: propagation now runs against label order, so
        # even Gauss-Seidel needs ~n iterations.
        n = 8
        g = DiGraph(n, list(range(1, n)), list(range(0, n - 1)))  # i+1 -> i
        res = run(Relay(), g, mode="deterministic")
        assert res.converged
        assert res.num_iterations >= n - 1


class TestNondeterministicSemantics:
    def test_single_thread_equals_gauss_seidel(self):
        """P=1, no jitter: the racy engine degenerates to the GS sweep."""
        g = directed_path(12)
        gs = run(Relay(), g, mode="deterministic")
        ne = run(
            Relay(),
            g,
            mode="nondeterministic",
            config=EngineConfig(threads=1, jitter=0.0, seed=0),
        )
        assert np.array_equal(gs.result(), ne.result())
        assert gs.num_iterations == ne.num_iterations
        assert ne.conflicts.total == 0

    def test_block_boundaries_cost_iterations(self):
        """With P blocks, each iteration cascades within blocks only."""
        n, p = 16, 4
        res = run(
            Relay(),
            directed_path(n),
            mode="nondeterministic",
            config=EngineConfig(threads=p, jitter=0.0, delay=2.0, seed=0),
        )
        assert res.converged
        assert res.result().tolist() == expected(n)
        # The value must hop across p-1 block boundaries, one per
        # iteration, so at least p iterations (plus termination).
        assert p <= res.num_iterations < n

    def test_same_thread_write_visible_to_later_update(self):
        observed = {}

        class Spy(Relay):
            def update(self, ctx):
                if ctx.in_degree:
                    observed[ctx.vid] = ctx.read_edge(ctx.in_edges()[1][0], "msg")
                super().update(ctx)

        # 2 threads over 4 vertices: thread 0 runs {0, 1}, thread 1 runs
        # {2, 3}.  In iteration 0: f(1) must see f(0)'s write (same
        # thread, earlier π); f(2) must NOT see f(1)'s write (different
        # thread, |Δπ| < d); f(3) must not see f(2) either.
        run(
            Spy(),
            directed_path(4),
            mode="nondeterministic",
            config=EngineConfig(threads=2, jitter=0.0, delay=2.0, max_iterations=1),
        )
        assert observed[1] == 1.0  # saw f(0)'s fresh write
        assert observed[2] == -1.0  # concurrent with f(1): stale
        assert observed[3] == 1.0  # same thread as f(2): fresh

    def test_cross_thread_visible_after_delay(self):
        observed = {}

        class Spy(Relay):
            def update(self, ctx):
                if ctx.in_degree:
                    observed[ctx.vid] = ctx.read_edge(ctx.in_edges()[1][0], "msg")
                super().update(ctx)

        # Edge from vertex 0 (thread 0, π=0) into vertex 5 (thread 1,
        # π=1): π(5) − π(0) = 1 < d=1?  Use d=1 so the gap of 1 makes the
        # write visible; with d=2 it would not be.
        g = DiGraph(8, [0], [5])
        for d, expect in ((1.0, 1.0), (2.0, -1.0)):
            observed.clear()
            run(
                Spy(),
                g,
                mode="nondeterministic",
                config=EngineConfig(threads=2, jitter=0.0, delay=d, max_iterations=1),
            )
            assert observed[5] == expect, f"d={d}"

    def test_reproducible_from_seed(self, rmat_small):
        from repro.algorithms import PageRank

        cfg = EngineConfig(threads=8, seed=123)
        a = run(PageRank(epsilon=1e-3), rmat_small, mode="nondeterministic", config=cfg)
        b = run(PageRank(epsilon=1e-3), rmat_small, mode="nondeterministic", config=cfg)
        assert np.array_equal(a.result(), b.result())
        assert a.conflicts.summary() == b.conflicts.summary()
        assert a.num_iterations == b.num_iterations

    def test_different_seeds_vary_interleaving(self, rmat_small):
        from repro.algorithms import PageRank

        runs = [
            run(
                PageRank(epsilon=1e-3),
                rmat_small,
                mode="nondeterministic",
                config=EngineConfig(threads=8, seed=s),
            )
            for s in range(4)
        ]
        summaries = {tuple(sorted(r.conflicts.summary().items())) for r in runs}
        assert len(summaries) > 1  # jitter changed at least some schedule

    def test_max_iterations_cap_reported(self):
        from repro.algorithms import AntiParity

        res = run(
            AntiParity(),
            generators.path_graph(6),
            mode="nondeterministic",
            config=EngineConfig(threads=2, seed=0, max_iterations=25),
        )
        assert not res.converged
        assert res.num_iterations == 25

    def test_commit_winner_has_max_timestamp(self):
        """Two concurrent writers: the later effective timestamp commits."""
        events = []

        class TwoWriters(VertexProgram):
            def __init__(self):
                self.traits = AlgorithmTraits(
                    name="tw",
                    conflict_profile=ConflictProfile.WRITE_WRITE,
                    converges_synchronously=True,
                    converges_async_deterministic=True,
                )

            def vertex_fields(self):
                return {"x": FieldSpec(np.float64, 0.0)}

            def edge_fields(self):
                return {"e": FieldSpec(np.float64, 0.0)}

            def initial_frontier(self, graph):
                return [0, 1]

            def update(self, ctx):
                if float(ctx.get("x")) == 0.0:  # write only on first visit
                    ctx.set("x", 1.0)
                    for eid in ctx.incident_eids().tolist():
                        ctx.write_edge(eid, "e", float(ctx.vid) + 10.0)
                        events.append(ctx.vid)

        g = generators.two_vertex_conflict_graph()
        res = run(
            TwoWriters(),
            g,
            mode="nondeterministic",
            config=EngineConfig(threads=2, jitter=0.5, delay=2.0, seed=9),
        )
        # Both wrote (10.0 and 11.0); exactly one value committed.
        assert res.state.edge("e")[0] in (10.0, 11.0)
        assert res.conflicts.write_write >= 1
        assert res.conflicts.lost_writes >= 1


class TestWorkAccounting:
    def test_reads_writes_tallied(self, rmat_small):
        from repro.algorithms import PageRank

        res = run(
            PageRank(epsilon=1e-3),
            rmat_small,
            mode="nondeterministic",
            config=EngineConfig(threads=4, seed=0),
        )
        assert res.total_reads > 0
        assert res.total_writes > 0
        assert res.total_updates == sum(
            sum(s.updates_per_thread) for s in res.iterations
        )
        # Per-thread vectors all sized P.
        for stats in res.iterations:
            assert len(stats.updates_per_thread) == 4
            assert len(stats.reads_per_thread) == 4
            assert len(stats.writes_per_thread) == 4

    def test_summary_keys(self, rmat_small):
        from repro.algorithms import BFS

        res = run(BFS(source=0), rmat_small, mode="nondeterministic", threads=2)
        s = res.summary()
        for key in ("mode", "converged", "iterations", "updates", "edge_reads",
                    "edge_writes", "read_write", "write_write"):
            assert key in s
