"""Smoke tests: the example scripts must run cleanly end to end.

Each example is executed in-process (importing its ``main``) against
the real library; the slow, minutes-long variance study is covered by
its own benchmark instead.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "Verdict:" in out
    assert "results identical across schedules: True" in out


def test_wcc_recovery(capsys):
    run_example("wcc_recovery.py")
    out = capsys.readouterr().out
    assert "corruption was recovered" in out
    assert "exact result: True" in out


def test_out_of_core(capsys):
    run_example("out_of_core.py")
    out = capsys.readouterr().out
    assert "bit-identical to in-memory Gauss-Seidel: True" in out


def test_examples_all_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "wcc_recovery.py",
        "pagerank_variance.py",
        "eligibility_audit.py",
        "sssp_schedules.py",
        "beyond_the_paper.py",
        "out_of_core.py",
    } <= present


@pytest.mark.parametrize("name", ["pagerank_variance.py", "eligibility_audit.py",
                                  "sssp_schedules.py", "beyond_the_paper.py"])
def test_other_examples_importable(name):
    """The heavier examples at least parse and expose main()."""
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py") + "_imp", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)
