"""Tests for the exhaustive schedule explorer (model checking)."""

import numpy as np
import pytest

from repro.algorithms import (
    AntiParity,
    BFS,
    EdgeIncrementCounter,
    MaxLabelPropagation,
    WeaklyConnectedComponents,
    reference,
)
from repro.engine import run
from repro.graph import DiGraph, generators
from repro.theory import explore_schedules


class TestTheorem2Exhaustively:
    def test_fig2_all_schedules_converge_to_minimum(self):
        """The paper's Fig. 2, verified over EVERY schedule, not a sample."""
        g = generators.two_vertex_conflict_graph()
        rep = explore_schedules(WeaklyConnectedComponents, g, threads=2)
        assert rep.always_converges
        assert rep.result_deterministic
        assert rep.distinct_results()[0].tolist() == [0.0, 0.0]

    def test_triangle_wcc(self):
        g = generators.cycle_graph(3, undirected=True)
        rep = explore_schedules(WeaklyConnectedComponents, g, threads=2)
        assert rep.always_converges
        assert rep.result_deterministic
        assert rep.distinct_results()[0].tolist() == [0.0, 0.0, 0.0]

    def test_path4_wcc_three_threads(self):
        g = generators.path_graph(4)
        rep = explore_schedules(WeaklyConnectedComponents, g, threads=3,
                                max_states=200_000)
        assert rep.always_converges
        assert rep.result_deterministic

    def test_maxlabel_exhaustive(self):
        g = generators.two_vertex_conflict_graph()
        rep = explore_schedules(MaxLabelPropagation, g, threads=2)
        assert rep.always_converges
        assert rep.distinct_results()[0].tolist() == [1.0, 1.0]


class TestTheorem1Exhaustively:
    def test_bfs_every_schedule_exact(self):
        g = DiGraph(4, [0, 0, 1], [1, 2, 3])
        truth = reference.bfs_reference(g, 0)
        rep = explore_schedules(lambda: BFS(source=0), g, threads=2,
                                max_states=200_000)
        assert rep.always_converges
        assert rep.result_deterministic
        assert np.array_equal(rep.distinct_results()[0], truth)


class TestNegativesExhaustively:
    def test_antiparity_cycle_witnessed(self):
        g = generators.two_vertex_conflict_graph()
        rep = explore_schedules(AntiParity, g, threads=2, max_depth=10)
        assert rep.cycle_found
        assert not rep.always_converges

    def test_counter_converges_but_wrong(self):
        """Every schedule terminates (Theorem 2) yet every schedule's
        tally overshoots the deterministic answer — eligibility for
        convergence is not eligibility for result fidelity."""
        g = generators.two_vertex_conflict_graph()
        rep = explore_schedules(lambda: EdgeIncrementCounter(target=2), g, threads=2)
        assert rep.always_converges
        de = run(EdgeIncrementCounter(target=2), g, mode="deterministic")
        de_total = int(de.result().sum())
        for result in rep.distinct_results():
            assert int(result.sum()) > de_total


class TestExplorerMechanics:
    def test_max_active_guard(self):
        g = generators.star_graph(9)
        with pytest.raises(ValueError, match="max_active"):
            explore_schedules(WeaklyConnectedComponents, g, threads=2, max_active=4)

    def test_max_states_guard(self):
        g = generators.path_graph(5)
        with pytest.raises(RuntimeError, match="max_states"):
            explore_schedules(WeaklyConnectedComponents, g, threads=2, max_states=3)

    def test_depth_bound_reported(self):
        g = generators.two_vertex_conflict_graph()
        rep = explore_schedules(AntiParity, g, threads=1, max_depth=4)
        # single thread: deterministic oscillation — revisits a state
        assert rep.cycle_found or rep.depth_exceeded

    def test_terminal_depth_positive(self):
        g = generators.two_vertex_conflict_graph()
        rep = explore_schedules(WeaklyConnectedComponents, g, threads=2)
        assert 1 <= rep.max_terminal_depth <= 5

    def test_single_thread_single_path(self):
        """P=1 admits exactly one schedule per state: the explored state
        graph is a simple chain."""
        g = generators.path_graph(3)
        rep = explore_schedules(WeaklyConnectedComponents, g, threads=1)
        assert rep.always_converges
        assert len(rep.terminal_results) == 1
