"""Property-based sweeps over the extension executors.

The same style as ``test_engine_hypothesis.py``: for arbitrary small
graphs and schedules, the push-mode and pure-async executors must reach
the exact fixed points their sufficient conditions promise.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import PushBFS, PushMinReach, WeaklyConnectedComponents, reference
from repro.algorithms.push_algorithms import min_reach_reference
from repro.engine import DelayModel, EngineConfig, run, run_push
from repro.graph import DiGraph


@st.composite
def graph_and_config(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    m = draw(st.integers(min_value=1, max_value=30))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    graph = DiGraph(n, [u for u, _ in edges], [v for _, v in edges])
    config = EngineConfig(
        threads=draw(st.integers(1, 5)),
        delay=float(draw(st.integers(1, 4))),
        jitter=draw(st.sampled_from([0.0, 0.5])),
        seed=draw(st.integers(0, 500)),
    )
    return graph, config


COMMON = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(graph_and_config())
@settings(**COMMON)
def test_push_bfs_exact_on_arbitrary_graphs(data):
    graph, config = data
    truth = reference.bfs_reference(graph, 0)
    res = run_push(PushBFS(source=0), graph, config=config)
    assert res.converged
    assert np.array_equal(res.result(), truth)


@given(graph_and_config())
@settings(**COMMON)
def test_push_min_reach_exact_on_arbitrary_graphs(data):
    graph, config = data
    truth = min_reach_reference(graph)
    res = run_push(PushMinReach(), graph, config=config)
    assert res.converged
    assert np.array_equal(res.result(), truth)


@given(graph_and_config())
@settings(**COMMON)
def test_pure_async_wcc_exact_on_arbitrary_graphs(data):
    graph, config = data
    truth = reference.wcc_reference(graph)
    res = run(WeaklyConnectedComponents(), graph, mode="pure-async", config=config)
    assert res.converged
    assert np.array_equal(res.result(), truth)


@given(graph_and_config(), st.integers(1, 3))
@settings(**COMMON)
def test_pure_async_exact_under_group_delays(data, group_size):
    graph, config = data
    model = DelayModel.distributed(group_size, intra=config.delay, network=16.0)
    cfg = config.with_(delay_model=model)
    truth = reference.wcc_reference(graph)
    res = run(WeaklyConnectedComponents(), graph, mode="pure-async", config=cfg)
    assert np.array_equal(res.result(), truth)


@given(graph_and_config())
@settings(**COMMON)
def test_chromatic_wcc_exact_on_arbitrary_graphs(data):
    graph, config = data
    truth = reference.wcc_reference(graph)
    res = run(WeaklyConnectedComponents(), graph, mode="chromatic", config=config)
    assert res.converged
    assert np.array_equal(res.result(), truth)


@given(graph_and_config())
@settings(**COMMON)
def test_push_engine_reproducible(data):
    graph, config = data
    a = run_push(PushBFS(source=0), graph, config=config)
    b = run_push(PushBFS(source=0), graph, config=config)
    assert np.array_equal(a.result(), b.result())
    assert a.conflicts.summary() == b.conflicts.summary()
