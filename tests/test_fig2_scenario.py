"""The paper's Fig. 2 write–write corruption/recovery walkthrough, scripted.

Fig. 2: vertices v and u share edge (v -> u); initial labels L_v < L_u,
edge label infinite.  Under concurrent execution the first iteration can
commit u's (larger, wrong) label to the edge; subsequent iterations must
correct the edge to the minimum and converge u — with the engine's
conflict log showing the write–write conflict and the lost write.
"""

import numpy as np
import pytest

from repro.algorithms import WeaklyConnectedComponents
from repro.engine import EngineConfig, run
from repro.graph import generators


def trace_run(seed: int, threads: int = 2):
    graph = generators.two_vertex_conflict_graph()
    snapshots = []

    def observer(iteration, state, next_schedule):
        snapshots.append(
            (
                iteration,
                state.vertex("label").copy(),
                float(state.edge("label")[0]),
            )
        )

    result = run(
        WeaklyConnectedComponents(),
        graph,
        mode="nondeterministic",
        config=EngineConfig(threads=threads, delay=2.0, jitter=0.5, seed=seed),
        observer=observer,
    )
    return result, snapshots


class TestFig2:
    def test_first_iteration_conflict(self):
        result, _ = trace_run(seed=3)
        assert result.conflicts.write_write >= 1

    def test_corruption_occurs_for_some_seed(self):
        """For at least one seed, u's write wins iteration 0: the edge
        carries the *larger* label — the corrupted state of Fig. 2."""
        corrupted_seen = False
        for seed in range(20):
            _, snaps = trace_run(seed)
            _, _, edge_after_first = snaps[0]
            if edge_after_first == 1.0:
                corrupted_seen = True
                break
        assert corrupted_seen

    def test_correct_write_can_also_win(self):
        winner_values = set()
        for seed in range(20):
            _, snaps = trace_run(seed)
            winner_values.add(snaps[0][2])
        # Lemma 2: the committed value is one of the two written values —
        # and across seeds both outcomes occur.
        assert winner_values == {0.0, 1.0}

    @pytest.mark.parametrize("seed", range(10))
    def test_recovery_always_completes(self, seed):
        result, snaps = trace_run(seed)
        assert result.converged
        assert np.array_equal(result.result(), [0.0, 0.0])
        # final edge label is the component minimum
        assert snaps[-1][2] == 0.0

    @pytest.mark.parametrize("seed", range(10))
    def test_recovery_within_three_iterations(self, seed):
        """The paper's walkthrough: correction lands by the second
        iteration and u truly converges by the third."""
        result, _ = trace_run(seed)
        assert result.num_iterations <= 4

    def test_corrupted_run_takes_extra_iterations(self):
        """When corruption happens, recovery costs at least one more
        iteration than the conflict-free sequential execution."""
        de = run(
            WeaklyConnectedComponents(),
            generators.two_vertex_conflict_graph(),
            mode="deterministic",
        )
        for seed in range(20):
            result, snaps = trace_run(seed)
            if snaps[0][2] == 1.0:  # corrupted first iteration
                assert result.num_iterations > de.num_iterations
                return
        pytest.fail("no corrupted schedule found in 20 seeds")
