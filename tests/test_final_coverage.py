"""Final coverage batch: cost-model chromatic path, CLI heavy commands,
cross-engine agreement matrix, and result-container details."""

import numpy as np
import pytest

from repro.algorithms import BFS, WeaklyConnectedComponents, reference
from repro.cli import main
from repro.engine import EngineConfig, run
from repro.graph import generators, load_dataset
from repro.perf import CostModel, CostParams


class TestChromaticCostModel:
    @pytest.fixture(scope="class")
    def chromatic_run(self):
        g = generators.rmat(7, 6.0, seed=2)
        return run(WeaklyConnectedComponents(), g, mode="chromatic",
                   config=EngineConfig(threads=8))

    def test_positive_time(self, chromatic_run):
        assert CostModel().chromatic_time(chromatic_run) > 0

    def test_dispatches_via_time(self, chromatic_run):
        m = CostModel()
        assert m.time(chromatic_run) == m.chromatic_time(chromatic_run)

    def test_per_color_barriers_charged(self, chromatic_run):
        cheap = CostModel(CostParams(barrier_ns=0.0)).chromatic_time(chromatic_run)
        costly = CostModel(CostParams(barrier_ns=1e6)).chromatic_time(chromatic_run)
        colors = chromatic_run.extra["num_colors"]
        expected = cheap + chromatic_run.num_iterations * colors * 1e-3
        assert costly == pytest.approx(expected)

    def test_coloring_charged_once(self, chromatic_run):
        no_color = CostModel(CostParams(coloring_ns=0.0)).chromatic_time(chromatic_run)
        with_color = CostModel(CostParams(coloring_ns=100.0)).chromatic_time(chromatic_run)
        g = chromatic_run.state.graph
        expected = no_color + (g.num_vertices + g.num_edges) * 100.0 * 1e-9
        assert with_color == pytest.approx(expected)


class TestCliHeavyCommands:
    def test_figure3_small(self, capsys):
        code = main(["figure3", "--scale", "7", "--threads", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "cache-line" in out

    def test_ablations(self, capsys):
        code = main(["ablations", "--scale", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "torn values" in out
        assert "delay sweep" in out
        assert "dispatch policy" in out

    def test_table3(self, capsys):
        code = main(["table3", "--scale", "7", "--runs", "2"])
        assert code == 0
        assert "DE vs. 4NE" in capsys.readouterr().out


class TestCrossEngineAgreementMatrix:
    """Every executor pair agrees on every absolute-convergence result."""

    MODES = ["sync", "deterministic", "chromatic", "nondeterministic", "pure-async"]

    def test_wcc_agreement(self):
        g = load_dataset("web-google-mini", scale=8, seed=7)
        truth = reference.wcc_reference(g)
        for mode in self.MODES:
            res = run(WeaklyConnectedComponents(), g, mode=mode,
                      config=EngineConfig(threads=8, seed=3))
            assert np.array_equal(res.result(), truth), mode

    def test_bfs_agreement(self):
        g = load_dataset("soc-livejournal1-mini", scale=8, seed=7)
        truth = reference.bfs_reference(g, 0)
        for mode in self.MODES:
            res = run(BFS(source=0), g, mode=mode,
                      config=EngineConfig(threads=4, seed=1))
            assert np.array_equal(res.result(), truth), mode


class TestRunResultDetails:
    def test_extra_defaults_empty(self, path8):
        res = run(WeaklyConnectedComponents(), path8, mode="deterministic")
        assert res.extra == {}

    def test_iteration_stats_totals(self, rmat_small):
        res = run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
                  config=EngineConfig(threads=4, seed=0))
        for s in res.iterations:
            assert s.total_reads == sum(s.reads_per_thread)
            assert s.total_writes == sum(s.writes_per_thread)
        assert res.num_iterations == len(res.iterations) or not res.converged

    def test_conflict_log_per_iteration_sums(self, rmat_small):
        res = run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=0))
        assert sum(res.conflicts.per_iteration.values()) == res.conflicts.total
