"""Tests for Frontier / initial_frontier and EngineConfig validation."""

import numpy as np
import pytest

from repro.engine import EngineConfig, Frontier, initial_frontier
from repro.algorithms import SSSP, WeaklyConnectedComponents
from repro.graph import generators


class TestFrontier:
    def test_dedup(self):
        f = Frontier([3, 3, 1, 1])
        assert len(f) == 2

    def test_sorted_vertices(self):
        f = Frontier([5, 1, 3])
        assert f.sorted_vertices().tolist() == [1, 3, 5]

    def test_bool_and_contains(self):
        f = Frontier()
        assert not f
        f.add(2)
        assert f
        assert 2 in f
        assert 3 not in f

    def test_as_set_is_copy(self):
        f = Frontier([1])
        s = f.as_set()
        s.add(99)
        assert 99 not in f

    def test_empty_sorted(self):
        assert Frontier().sorted_vertices().size == 0


class TestInitialFrontier:
    def test_all(self):
        g = generators.path_graph(4)
        f = initial_frontier(WeaklyConnectedComponents(), g)
        assert len(f) == 4

    def test_explicit_list(self):
        class P(WeaklyConnectedComponents):
            def initial_frontier(self, graph):
                return [2, 0]

        g = generators.path_graph(4)
        f = initial_frontier(P(), g)
        assert f.sorted_vertices().tolist() == [0, 2]

    def test_out_of_range_rejected(self):
        class P(WeaklyConnectedComponents):
            def initial_frontier(self, graph):
                return [99]

        g = generators.path_graph(4)
        with pytest.raises(ValueError, match="out of range"):
            initial_frontier(P(), g)

    def test_unknown_string_rejected(self):
        class P(WeaklyConnectedComponents):
            def initial_frontier(self, graph):
                return "everything"

        g = generators.path_graph(4)
        with pytest.raises(ValueError, match="unknown frontier"):
            initial_frontier(P(), g)


class TestEngineConfig:
    def test_defaults_valid(self):
        cfg = EngineConfig()
        assert cfg.threads == 4
        assert cfg.delay >= 1

    def test_threads_validation(self):
        with pytest.raises(ValueError, match="threads"):
            EngineConfig(threads=0)

    def test_delay_validation(self):
        with pytest.raises(ValueError, match="delay"):
            EngineConfig(delay=0.5)

    def test_jitter_range(self):
        with pytest.raises(ValueError, match="jitter"):
            EngineConfig(jitter=1.0)
        with pytest.raises(ValueError, match="jitter"):
            EngineConfig(jitter=-0.1)
        EngineConfig(jitter=0.0)  # boundary ok

    def test_max_iterations_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(max_iterations=0)

    def test_torn_probability_range(self):
        with pytest.raises(ValueError):
            EngineConfig(torn_probability=1.5)

    def test_with_updates_functionally(self):
        cfg = EngineConfig(threads=4)
        cfg2 = cfg.with_(threads=8, seed=5)
        assert cfg.threads == 4
        assert cfg2.threads == 8
        assert cfg2.seed == 5

    def test_frozen(self):
        cfg = EngineConfig()
        with pytest.raises(AttributeError):
            cfg.threads = 9
