"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import generators, is_weakly_connected


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = generators.erdos_renyi(50, 200, seed=1)
        assert g.num_vertices == 50
        assert g.num_edges == 200

    def test_no_self_loops_by_default(self):
        g = generators.erdos_renyi(30, 100, seed=2)
        assert not np.any(g.edge_src == g.edge_dst)

    def test_self_loops_allowed(self):
        g = generators.erdos_renyi(4, 16, seed=3, allow_self_loops=True)
        assert g.num_edges == 16  # 16 = n*n requires loops

    def test_deterministic_given_seed(self):
        a = generators.erdos_renyi(40, 120, seed=7)
        b = generators.erdos_renyi(40, 120, seed=7)
        assert a == b

    def test_different_seed_different_graph(self):
        a = generators.erdos_renyi(40, 120, seed=7)
        b = generators.erdos_renyi(40, 120, seed=8)
        assert a != b

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            generators.erdos_renyi(3, 7, seed=0)

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi(0, 0)


class TestRmat:
    def test_size(self):
        g = generators.rmat(8, 4.0, seed=5, dedup=False, drop_self_loops=False)
        assert g.num_vertices == 256
        assert g.num_edges == 1024

    def test_dedup_shrinks(self):
        g = generators.rmat(6, 8.0, seed=5)
        assert g.num_edges <= 8 * 64

    def test_deterministic(self):
        assert generators.rmat(7, 5.0, seed=9) == generators.rmat(7, 5.0, seed=9)

    def test_skewed_degrees(self):
        # Graph500 parameters concentrate edges: the max degree should be
        # far above the average.
        g = generators.rmat(9, 8.0, seed=4)
        avg = g.num_edges / g.num_vertices
        assert g.out_degrees().max() > 4 * avg

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            generators.rmat(4, 2.0, a=0.8, b=0.3, c=0.2)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            generators.rmat(-1, 2.0)

    def test_scale_zero(self):
        g = generators.rmat(0, 1.0, drop_self_loops=False)
        assert g.num_vertices == 1


class TestPreferentialAttachment:
    def test_connectivity(self):
        g = generators.preferential_attachment(100, 3, seed=1)
        assert is_weakly_connected(g)

    def test_edges_point_to_earlier_vertices(self):
        g = generators.preferential_attachment(60, 2, seed=2)
        assert np.all(g.edge_src > g.edge_dst)

    def test_out_degree_bound(self):
        g = generators.preferential_attachment(60, 4, seed=3)
        assert g.out_degrees().max() <= 4

    def test_heavy_tailed_in_degree(self):
        g = generators.preferential_attachment(400, 5, seed=4)
        assert g.in_degrees().max() > 3 * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            generators.preferential_attachment(0, 1)
        with pytest.raises(ValueError):
            generators.preferential_attachment(5, 0)


class TestBanded:
    def test_band_respected(self):
        g = generators.banded(100, bandwidth=3, density=0.9, seed=1)
        span = np.abs(g.edge_src - g.edge_dst)
        assert span.max() <= 3
        assert span.min() >= 1

    def test_symmetric(self):
        g = generators.banded(50, bandwidth=2, density=0.8, seed=2, symmetric=True)
        for e in range(g.num_edges):
            u, v = g.edge_endpoints(e)
            assert g.has_edge(v, u)

    def test_asymmetric_possible(self):
        g = generators.banded(200, bandwidth=2, density=0.5, seed=3, symmetric=False)
        asym = sum(
            1 for e in range(g.num_edges)
            if not g.has_edge(*reversed(g.edge_endpoints(e)))
        )
        assert asym > 0

    def test_density_one_fills_band(self):
        g = generators.banded(10, bandwidth=1, density=1.0, seed=0)
        assert g.num_edges == 18  # 9 offsets * 2 directions

    def test_density_zero_empty(self):
        g = generators.banded(10, bandwidth=2, density=0.0, seed=0)
        assert g.num_edges == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            generators.banded(10, bandwidth=0, density=0.5)
        with pytest.raises(ValueError):
            generators.banded(10, bandwidth=2, density=1.5)


class TestStructured:
    def test_path_graph(self):
        g = generators.path_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 8  # 4 undirected edges
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_path_graph_directed(self):
        g = generators.path_graph(5, undirected=False)
        assert g.num_edges == 4
        assert not g.has_edge(1, 0)

    def test_cycle_graph(self):
        g = generators.cycle_graph(6)
        assert g.num_edges == 6
        assert g.has_edge(5, 0)

    def test_cycle_graph_single_vertex(self):
        g = generators.cycle_graph(1)
        assert g.num_edges == 0

    def test_star_graph(self):
        g = generators.star_graph(5)
        assert g.out_degree(0) == 4
        assert g.in_degree(0) == 4

    def test_complete_graph(self):
        g = generators.complete_graph(4)
        assert g.num_edges == 12

    def test_grid_graph(self):
        g = generators.grid_graph(3, 4)
        assert g.num_vertices == 12
        # interior vertex degree: 4 undirected neighbours = 4 out-edges
        assert g.out_degree(5) == 4
        # corner: 2
        assert g.out_degree(0) == 2

    def test_random_tree_connected(self):
        g = generators.random_tree(40, seed=3)
        assert is_weakly_connected(g)
        assert g.num_edges == 2 * 39

    def test_two_vertex_conflict_graph(self):
        g = generators.two_vertex_conflict_graph()
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.has_edge(0, 1)

    def test_all_generated_graphs_validate(self):
        for g in [
            generators.path_graph(6),
            generators.cycle_graph(6),
            generators.star_graph(6),
            generators.complete_graph(5),
            generators.grid_graph(3, 3),
            generators.random_tree(20, seed=1),
            generators.banded(30, 3, 0.5, seed=1),
            generators.rmat(6, 4.0, seed=1),
            generators.preferential_attachment(30, 3, seed=1),
            generators.erdos_renyi(30, 60, seed=1),
        ]:
            g.validate()
