"""Cross-module integration tests: theorems exercised end to end."""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    SSSP,
    MaxLabelPropagation,
    PageRank,
    SpMV,
    WeaklyConnectedComponents,
    reference,
)
from repro.engine import AtomicityPolicy, EngineConfig, run
from repro.graph import generators
from repro.theory import audit_run, check_program


GRAPHS = {
    "rmat": lambda: generators.rmat(7, 6.0, seed=2),
    "er": lambda: generators.erdos_renyi(200, 900, seed=4),
    "grid": lambda: generators.grid_graph(8, 8),
    "tree": lambda: generators.random_tree(100, seed=6),
    "star": lambda: generators.star_graph(40),
}


@pytest.mark.parametrize("graph_name", GRAPHS)
@pytest.mark.parametrize("threads", [2, 8])
class TestTheorem2EndToEnd:
    """Traversal algorithms: exact results under racy execution."""

    def test_wcc(self, graph_name, threads):
        g = GRAPHS[graph_name]()
        truth = reference.wcc_reference(g)
        res = run(WeaklyConnectedComponents(), g, mode="nondeterministic",
                  config=EngineConfig(threads=threads, seed=11))
        assert res.converged
        assert np.array_equal(res.result(), truth)
        assert audit_run(res) == []

    def test_maxlabel(self, graph_name, threads):
        g = GRAPHS[graph_name]()
        truth = reference.max_label_reference(g)
        res = run(MaxLabelPropagation(), g, mode="nondeterministic",
                  config=EngineConfig(threads=threads, seed=11))
        assert np.array_equal(res.result(), truth)


@pytest.mark.parametrize("graph_name", GRAPHS)
class TestTheorem1EndToEnd:
    """Fixed-point and single-writer traversal: RW conflicts only."""

    def test_sssp_exact(self, graph_name):
        g = GRAPHS[graph_name]()
        prog = SSSP(source=0)
        truth = reference.sssp_reference(g, 0, prog.make_weights(g))
        res = run(SSSP(source=0), g, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=5))
        assert np.array_equal(res.result(), truth)
        assert res.conflicts.write_write == 0

    def test_bfs_exact(self, graph_name):
        g = GRAPHS[graph_name]()
        res = run(BFS(source=0), g, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=5))
        assert np.array_equal(res.result(), reference.bfs_reference(g, 0))

    def test_pagerank_converges_near_reference(self, graph_name):
        g = GRAPHS[graph_name]()
        res = run(PageRank(epsilon=1e-4), g, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=5))
        assert res.converged
        ref = reference.pagerank_reference(g)
        assert np.max(np.abs(res.result().astype(np.float64) - ref)) < 0.05


class TestAtomicityPoliciesValueEquivalent:
    """§III: all three atomicity methods produce identical values."""

    @pytest.mark.parametrize(
        "policy",
        [AtomicityPolicy.LOCK, AtomicityPolicy.CACHE_LINE, AtomicityPolicy.ATOMIC_RELAXED],
    )
    def test_same_values_across_policies(self, rmat_small, policy):
        base = run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
                   config=EngineConfig(threads=8, seed=7,
                                       atomicity=AtomicityPolicy.CACHE_LINE))
        other = run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
                    config=EngineConfig(threads=8, seed=7, atomicity=policy))
        assert np.array_equal(base.result(), other.result())
        assert base.num_iterations == other.num_iterations


class TestEligibilityMatchesBehaviour:
    """The checker's verdicts agree with what the engines actually do."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PageRank(epsilon=1e-3),
            lambda: SpMV(epsilon=1e-8),
            WeaklyConnectedComponents,
            MaxLabelPropagation,
            lambda: SSSP(source=0),
            lambda: BFS(source=0),
        ],
    )
    def test_eligible_programs_converge(self, factory, er_medium):
        program = factory()
        assert check_program(program).verdict.eligible
        res = run(factory(), er_medium, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=3))
        assert res.converged

    @pytest.mark.parametrize("factory", [WeaklyConnectedComponents, MaxLabelPropagation,
                                         lambda: SSSP(source=0), lambda: BFS(source=0)])
    def test_absolute_convergence_gives_identical_results(self, factory, er_medium):
        program = factory()
        report = check_program(program)
        if not report.results_deterministic:
            pytest.skip("approximate convergence")
        de = run(factory(), er_medium, mode="deterministic")
        for seed in (0, 1):
            ne = run(factory(), er_medium, mode="nondeterministic",
                     config=EngineConfig(threads=16, seed=seed))
            assert np.array_equal(de.result(), ne.result())


class TestIterationCountOrdering:
    """Asynchrony reduces iterations: DE <= NE <= SYNC (on these inputs)."""

    @pytest.mark.parametrize("factory", [WeaklyConnectedComponents,
                                         lambda: BFS(source=0)])
    def test_ordering(self, factory):
        g = generators.grid_graph(10, 10)
        de = run(factory(), g, mode="deterministic").num_iterations
        ne = run(factory(), g, mode="nondeterministic",
                 config=EngineConfig(threads=8, seed=0)).num_iterations
        sync = run(factory(), g, mode="sync").num_iterations
        assert de <= ne <= sync


class TestTornValuesBreakTheorems:
    def test_sssp_corrupted_without_atomicity(self):
        g = generators.erdos_renyi(512, 2048, seed=3)
        prog = SSSP(source=0)
        truth = reference.sssp_reference(g, 0, prog.make_weights(g))
        corrupted = 0
        for seed in range(3):
            res = run(SSSP(source=0), g, mode="nondeterministic",
                      config=EngineConfig(threads=8, seed=seed,
                                          atomicity=AtomicityPolicy.NONE,
                                          torn_probability=1.0,
                                          max_iterations=500))
            if not res.converged or not np.array_equal(res.result(), truth):
                corrupted += 1
        assert corrupted > 0

    def test_atomicity_restores_correctness(self):
        g = generators.erdos_renyi(512, 2048, seed=3)
        prog = SSSP(source=0)
        truth = reference.sssp_reference(g, 0, prog.make_weights(g))
        res = run(SSSP(source=0), g, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=0,
                                      atomicity=AtomicityPolicy.CACHE_LINE))
        assert np.array_equal(res.result(), truth)
