"""Unit tests for graph file I/O."""

import numpy as np
import pytest

from repro.graph import DiGraph, generators, io


class TestEdgelist:
    def test_roundtrip(self, tmp_path):
        g = generators.rmat(6, 4.0, seed=3)
        path = tmp_path / "g.txt"
        io.write_edgelist(g, path)
        back = io.read_edgelist(path)
        assert back == g

    def test_header_comment_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n0 1\n1 2\n")
        g = io.read_edgelist(path)
        assert g.num_edges == 2

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n\n1 2\n")
        assert io.read_edgelist(path).num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n42\n")
        with pytest.raises(ValueError, match="expected"):
            io.read_edgelist(path)

    def test_num_vertices_override(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = io.read_edgelist(path, num_vertices=10)
        assert g.num_vertices == 10

    def test_dedup_and_loops(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n0 1\n")
        g = io.read_edgelist(path, dedup=True, drop_self_loops=True)
        assert g.num_edges == 1

    def test_write_without_header(self, tmp_path):
        g = DiGraph(2, [0], [1])
        path = tmp_path / "g.txt"
        io.write_edgelist(g, path, header=False)
        assert path.read_text() == "0 1\n"


class TestSnap:
    def test_sparse_ids_compacted(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# SNAP style\n100 200\n200 5000\n")
        g, mapping = io.read_snap(path)
        assert g.num_vertices == 3
        assert mapping == {100: 0, 200: 1, 5000: 2}
        assert g.has_edge(0, 1)

    def test_dedup_default(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("1 2\n1 2\n2 2\n")
        g, _ = io.read_snap(path)
        assert g.num_edges == 1  # duplicate removed, self-loop removed


class TestMatrixMarket:
    def test_roundtrip_general(self, tmp_path):
        g = generators.erdos_renyi(20, 50, seed=4)
        path = tmp_path / "m.mtx"
        io.write_matrix_market(g, path)
        back = io.read_matrix_market(path)
        assert back == g

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 1.5\n"
            "3 2 0.5\n"
        )
        g = io.read_matrix_market(path)
        assert g.num_edges == 4
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_comment_lines_allowed(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% a comment\n"
            "2 2 1\n"
            "1 2\n"
        )
        g = io.read_matrix_market(path)
        assert g.num_edges == 1

    def test_diagonal_dropped(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n1 2\n"
        )
        g = io.read_matrix_market(path)
        assert g.num_edges == 1

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("3 3 0\n")
        with pytest.raises(ValueError, match="header"):
            io.read_matrix_market(path)

    def test_non_square_rejected(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 3 0\n")
        with pytest.raises(ValueError, match="square"):
            io.read_matrix_market(path)

    def test_non_coordinate_rejected(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n")
        with pytest.raises(ValueError, match="coordinate"):
            io.read_matrix_market(path)
