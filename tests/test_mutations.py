"""Dynamic graphs: mutation batches, incremental repair, provenance.

The contract under test is the one the bench harness banks on: streaming
a mutation batch through a converged delta run and letting the engine
*repair* must land on exactly the state a from-scratch run on the
mutated graph would reach — bit-exact for MIN kernels (including the
honest full-restart path), within truncation noise for ADD — and the
flight recorder must name the repaired region so a repair is auditable
after the fact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, PageRank, WeaklyConnectedComponents
from repro.engine import EngineConfig, run
from repro.engine.nondet_delta import run_delta
from repro.graph import generators
from repro.graph.mutations import (
    MutationBatch,
    apply_batch,
    apply_batches,
    generate_batches,
    stable_weights,
)

EPS = 1e-4


def _graph(scale=8):
    return generators.rmat(scale, 8.0, seed=3)


def _sssp():
    return SSSP(source=0, weight_fn=lambda g: stable_weights(g, seed=5))


class TestGenerateApply:
    def test_batches_are_seed_deterministic(self):
        g = _graph()
        a = generate_batches(g, 3, 0.01, seed=7)
        b = generate_batches(g, 3, 0.01, seed=7)
        for x, y in zip(a, b):
            assert np.array_equal(x.inserts, y.inserts)
            assert np.array_equal(x.deletes, y.deletes)
        c = generate_batches(g, 3, 0.01, seed=8)
        assert not all(np.array_equal(x.deletes, y.deletes)
                       for x, y in zip(a, c))

    def test_batch_sizing_and_sanity(self):
        g = _graph()
        batches = generate_batches(g, 4, 0.01, seed=7)
        assert len(batches) == 4
        for b in batches:
            assert b.size == pytest.approx(g.num_edges * 0.01, rel=0.5)
            assert not np.any(b.inserts[:, 0] == b.inserts[:, 1]), \
                "generated inserts must not be self-loops"

    def test_apply_updates_edge_multiset(self):
        g = _graph(6)
        batches = generate_batches(g, 2, 0.05, seed=7)
        g1, diff = apply_batch(g, batches[0])
        assert g1.num_edges == (g.num_edges + diff.inserted.shape[0]
                                - diff.deleted.shape[0])
        assert g1.num_vertices == g.num_vertices
        # every realized delete existed in the old graph
        old = set(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
        for s, d in diff.deleted.tolist():
            assert (s, d) in old

    def test_missing_delete_raises(self):
        g = _graph(6)
        absent = [[0, 1]]
        while tuple(absent[0]) in set(
                zip(g.edge_src.tolist(), g.edge_dst.tolist())):
            absent[0][1] += 1
        with pytest.raises(ValueError, match="not present"):
            apply_batch(g, MutationBatch(deletes=absent))

    def test_diff_affected_sets(self):
        g = _graph(6)
        b = MutationBatch(inserts=[[1, 2]],
                          deletes=[[int(g.edge_src[0]), int(g.edge_dst[0])]])
        _, diff = apply_batch(g, b)
        assert 1 in diff.affected_sources
        assert 2 in diff.affected_targets
        assert set(diff.affected_vertices) >= {1, 2, int(g.edge_src[0])}

    def test_apply_batches_folds(self):
        g = _graph(6)
        batches = generate_batches(g, 3, 0.02, seed=7)
        final, diffs = apply_batches(g, batches)
        assert len(diffs) == 3
        step = g
        for b in batches:
            step, _ = apply_batch(step, b)
        assert np.array_equal(final.edge_src, step.edge_src)
        assert np.array_equal(final.edge_dst, step.edge_dst)

    def test_batch_round_trips_through_dict(self):
        b = MutationBatch(inserts=[[1, 2], [3, 4]], deletes=[[5, 6]])
        b2 = MutationBatch.from_dict(b.to_dict())
        assert np.array_equal(b.inserts, b2.inserts)
        assert np.array_equal(b.deletes, b2.deletes)


class TestStableWeights:
    def test_weights_keyed_by_endpoints(self):
        """An edge that survives a mutation keeps its weight even though
        its edge id reshuffles — the property index-seeded weights lack."""
        g = _graph()
        w = stable_weights(g, seed=5)
        g1, _ = apply_batch(g, generate_batches(g, 1, 0.01, seed=7)[0])
        w1 = stable_weights(g1, seed=5)
        by_pair = {}
        for i in range(g.num_edges):
            by_pair.setdefault(
                (int(g.edge_src[i]), int(g.edge_dst[i])), w[i])
        for i in range(g1.num_edges):
            pair = (int(g1.edge_src[i]), int(g1.edge_dst[i]))
            if pair in by_pair:
                assert w1[i] == by_pair[pair]

    def test_range_and_seed(self):
        g = _graph(6)
        w = stable_weights(g, seed=5, low=1.0, high=10.0)
        assert w.shape == (g.num_edges,)
        assert np.all((w >= 1.0) & (w < 10.0))
        assert not np.array_equal(w, stable_weights(g, seed=6))


class TestIncrementalRepair:
    """Repair ≡ from-scratch, per kernel and repair mode."""

    def _scratch(self, factory, graph):
        res = run(factory(), graph, mode="nondeterministic",
                  vectorized="require", config=EngineConfig(threads=4, seed=0))
        assert res.converged
        return res.result()

    @pytest.mark.parametrize("name,factory", [
        ("sssp", _sssp), ("bfs", BFS), ("wcc", WeaklyConnectedComponents),
    ])
    def test_min_repair_bit_exact(self, name, factory):
        graph = _graph()
        batches = generate_batches(graph, 2, 0.005, seed=7)
        res = run_delta(factory(), graph, EngineConfig(threads=4, seed=0),
                        mutations=batches)
        assert res.converged
        assert res.extra["mutations_applied"] == 2
        assert res.extra["delta"]["accumulation_identity"]
        mutated, _ = apply_batches(graph, batches)
        assert res.extra["final_num_edges"] == mutated.num_edges
        assert np.array_equal(res.result(), self._scratch(factory, mutated))
        # from-scratch *delta* on the mutated graph agrees too
        scratch_delta = run_delta(factory(), mutated,
                                  EngineConfig(threads=4, seed=0))
        assert np.array_equal(res.result(), scratch_delta.result())

    def test_pagerank_reseed_matches_scratch(self):
        graph = _graph()
        batches = generate_batches(graph, 2, 0.005, seed=7)
        factory = lambda: PageRank(epsilon=EPS)  # noqa: E731
        res = run_delta(factory(), graph, EngineConfig(threads=4, seed=0),
                        mutations=batches)
        assert res.converged
        for m in res.extra["mutations"]:
            assert m["repair_mode"] == "reseed"
            assert m["repaired_vertices"] > 0
            assert m["repair_seconds"] >= 0
        mutated, _ = apply_batches(graph, batches)
        scratch = run_delta(factory(), mutated,
                            EngineConfig(threads=4, seed=0))
        assert np.max(np.abs(res.result() - scratch.result())) <= 100 * EPS

    def test_wcc_full_restart_is_honest_and_exact(self):
        """Identity gains only trust grounded support, so a batch that
        taints the giant component exceeds the region cap; the engine
        must say ``full_restart`` — and still be bit-exact."""
        graph = _graph(7)
        batches = generate_batches(graph, 1, 0.05, seed=11)
        res = run_delta(WeaklyConnectedComponents(), graph,
                        EngineConfig(threads=4, seed=0), mutations=batches)
        modes = {m["repair_mode"] for m in res.extra["mutations"]}
        assert modes <= {"taint", "full_restart"}
        capped = [m for m in res.extra["mutations"]
                  if m["repair_mode"] == "full_restart"]
        for m in capped:
            assert m["region_capped"] is True
        mutated, _ = apply_batches(graph, batches)
        assert np.array_equal(
            res.result(),
            self._scratch(WeaklyConnectedComponents, mutated))

    def test_repair_provenance_recorded(self):
        """The flight recorder names the repaired region: mode, counts,
        and seed vertices, per batch."""
        from repro.obs import Recorder

        recorder = Recorder(policy="all")
        graph = _graph(7)
        batches = generate_batches(graph, 2, 0.01, seed=7)
        res = run_delta(_sssp(), graph, EngineConfig(threads=2, seed=0),
                        mutations=batches, record=recorder)
        assert res.converged
        repairs = [e for e in recorder.records if e.get("type") == "repair"]
        assert len(repairs) == 2
        for i, rec in enumerate(repairs):
            assert rec["batch"] == i
            assert rec["repair_mode"] in ("taint", "full_restart")
            assert rec["repaired_vertices"] >= 0
            assert isinstance(rec["seeds"], list)
            assert rec["inserted"] + rec["deleted"] > 0

    def test_mutation_telemetry_events(self):
        from repro.obs import Telemetry

        sink = Telemetry()
        graph = _graph(7)
        res = run_delta(_sssp(), graph, EngineConfig(seed=0),
                        mutations=generate_batches(graph, 1, 0.01, seed=7))
        assert res.converged
        sink2 = Telemetry()
        res2 = run_delta(_sssp(), graph, EngineConfig(seed=0),
                         mutations=generate_batches(graph, 1, 0.01, seed=7),
                         telemetry=sink2)
        assert np.array_equal(res.result(), res2.result()), \
            "telemetry must not perturb the repair"
        phases = {}
        for span in sink2.spans:
            for k, v in span.extra.get("phases", {}).items():
                phases[k] = phases.get(k, 0.0) + v
        assert phases.get("mutate_repair", 0.0) > 0.0

    def test_mutations_via_dicts(self):
        """run() accepts JSON-shaped batches (the service path)."""
        graph = _graph(7)
        batches = generate_batches(graph, 1, 0.01, seed=7)
        res = run(_sssp(), graph, mode="delta",
                  config=EngineConfig(seed=0),
                  mutations=[b.to_dict() for b in batches])
        ref = run(_sssp(), graph, mode="delta",
                  config=EngineConfig(seed=0), mutations=batches)
        assert np.array_equal(res.result(), ref.result())
