"""The delta-accumulative engine: equivalence, eligibility, algebra.

Three claims are under test:

1. **Equivalence** — for every kernel with a verified ``(⊕, identity,
   g_edge)`` algebra, propagating deltas converges to the recomputation
   fixed point: bit-exact for idempotent ⊕ (MIN), within the threshold's
   truncation bound for ADD, across seeds × {pull, push} dispatch.
2. **The accumulation identity** — ``x = x0 ⊕ Σ committed deltas``
   holds *exactly* (the engine defines x through the fold, so a broken
   commit path cannot hide behind float noise).
3. **Eligibility gating** — programs without a sound algebra are refused
   with a concrete witness, including declared-but-false algebras that
   only small-graph search can catch.

The property-based suite at the bottom mirrors the PR-7 CombineOp fold
suite for the engine's *array* fold (``_fold_arr``), whose NaN/±inf
semantics must match the scalar algebra the eligibility check verifies.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    BFS,
    SSSP,
    AntiParity,
    ConflictColoring,
    EdgeIncrementCounter,
    PageRank,
    WeaklyConnectedComponents,
)
from repro.engine import CombineOp, EngineConfig, run
from repro.engine.nondet_delta import (
    DeltaKernel,
    _fold_arr,
    delta_fallback_reasons,
    resolve_delta_kernel,
    run_delta,
)
from repro.graph import generators
from repro.graph.mutations import stable_weights
from repro.theory import Verdict, check_delta_program, probe_delta_algebra

EPS = 1e-4


def _graph(scale=8):
    return generators.rmat(scale, 8.0, seed=3)


def _sssp():
    return SSSP(source=0, weight_fn=lambda g: stable_weights(g, seed=5))


MIN_KERNELS = {
    "wcc": WeaklyConnectedComponents,
    "sssp": _sssp,
    "bfs": BFS,
}


def _recompute(factory, graph, seed=0):
    res = run(factory(), graph, mode="nondeterministic",
              vectorized="require", config=EngineConfig(threads=4, seed=seed))
    assert res.converged
    return res.result()


def _pagerank_reference(graph, *, damping=0.85):
    """Dense float64 fixpoint iterated far below the engines' epsilon."""
    n = graph.num_vertices
    outdeg = np.maximum(graph.out_degrees(), 1).astype(np.float64)
    x = np.full(n, 1.0 - damping)
    for _ in range(10_000):
        nxt = np.full(n, 1.0 - damping)
        np.add.at(nxt, graph.edge_dst,
                  damping * x[graph.edge_src] / outdeg[graph.edge_src])
        if np.max(np.abs(nxt - x)) < 1e-14:
            return nxt
        x = nxt
    return x


class TestDeltaEquivalence:
    @pytest.mark.parametrize("name", sorted(MIN_KERNELS))
    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("direction", ["pull", "push"])
    def test_min_kernels_bit_exact(self, name, seed, direction):
        """Idempotent ⊕: any delivery order folds to the same values."""
        graph = _graph()
        factory = MIN_KERNELS[name]
        res = run_delta(factory(), graph,
                        EngineConfig(threads=4, seed=seed),
                        direction=direction)
        assert res.converged
        assert res.extra["delta"]["accumulation_identity"]
        assert np.array_equal(res.result(), _recompute(factory, graph))

    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("direction", ["pull", "push"])
    def test_pagerank_matches_reference(self, seed, direction):
        """ADD: delta lands within truncation noise of the true fixpoint.

        The bound is against a dense reference iterated to 1e-14, not
        against the recompute engine — the *recompute* result carries
        ~100ε of its own truncation (it stops when local change < ε),
        while delta's residual-mass threshold keeps it within a few ε.
        """
        graph = _graph()
        ref = _pagerank_reference(graph)
        res = run_delta(PageRank(epsilon=EPS), graph,
                        EngineConfig(threads=4, seed=seed),
                        direction=direction)
        assert res.converged
        assert res.extra["delta"]["accumulation_identity"]
        assert np.max(np.abs(res.result() - ref)) <= 20 * EPS
        recompute = _recompute(lambda: PageRank(epsilon=EPS), graph)
        assert np.max(np.abs(res.result() - recompute)) <= 300 * EPS

    def test_accumulation_identity_is_exact(self):
        """x is *defined* by the fold: identity holds bit-for-bit."""
        graph = _graph(7)
        for factory in (lambda: PageRank(epsilon=EPS), _sssp):
            res = run_delta(factory(), graph, EngineConfig(seed=0))
            assert res.extra["delta"]["accumulation_identity"] is True

    def test_priority_scheduling_converges_to_same_fixpoint(self):
        graph = _graph()
        base = _recompute(_sssp, graph)
        res = run_delta(_sssp(), graph, EngineConfig(threads=4, seed=3),
                        scheduling="priority", priority_frac=0.25)
        assert res.converged
        assert res.extra["delta"]["scheduling"] == "priority"
        assert np.array_equal(res.result(), base)

    def test_threshold_trades_accuracy_for_iterations(self):
        graph = _graph()
        tight = run_delta(PageRank(epsilon=EPS), graph, EngineConfig(seed=0),
                          threshold=1e-8)
        loose = run_delta(PageRank(epsilon=EPS), graph, EngineConfig(seed=0),
                          threshold=1e-4)
        assert loose.num_iterations < tight.num_iterations
        ref = _pagerank_reference(graph)
        err_tight = np.max(np.abs(tight.result() - ref))
        err_loose = np.max(np.abs(loose.result() - ref))
        assert err_tight <= err_loose


class TestEligibilityGate:
    @pytest.mark.parametrize("factory", [
        lambda: PageRank(epsilon=EPS), _sssp, BFS,
        WeaklyConnectedComponents,
    ])
    def test_eligible_kernels(self, factory):
        report = check_delta_program(factory())
        assert report.verdict is Verdict.ELIGIBLE_DELTA
        assert any("accumulative formulation verified" in r
                   for r in report.reasons)

    def test_pagerank_warns_about_exactly_once(self):
        report = check_delta_program(PageRank(epsilon=EPS))
        assert not report.results_deterministic
        assert any("exactly-once" in w for w in report.warnings)

    def test_min_kernels_results_deterministic(self):
        assert check_delta_program(_sssp()).results_deterministic

    @pytest.mark.parametrize("factory", [
        AntiParity, EdgeIncrementCounter, ConflictColoring,
    ])
    def test_ineligible_programs_refused(self, factory):
        program = factory()
        report = check_delta_program(program)
        assert not report.verdict.eligible
        assert delta_fallback_reasons(program)
        with pytest.raises(ValueError, match="not eligible"):
            run_delta(program, _graph(6))

    def test_antiparity_refusal_carries_live_witness(self):
        """The refusal demonstrates the failure, not just asserts it."""
        report = check_delta_program(AntiParity())
        assert any("witness" in r or "oscillat" in r for r in report.reasons)

    def test_declared_but_false_algebra_refuted_by_probe(self):
        """A kernel whose g does not distribute over ⊕ is caught by
        small-graph search even though its structural traits look fine."""

        class SquaringKernel(DeltaKernel):
            op = CombineOp.MIN
            field = "dist"

            def initial(self, graph):
                n = graph.num_vertices
                d = np.full(n, np.inf)
                d[0] = 0.0
                return np.full(n, np.inf), d

            def gains(self, graph, eids, values):
                return np.asarray(values) ** 2  # min(a,b)^2 != min(a^2,b^2)
                # for negative probe values — not distributive.

        witness = probe_delta_algebra(SquaringKernel(_sssp()))
        assert witness is not None
        assert "distribut" in witness

    def test_runner_guards(self):
        graph = _graph(6)
        with pytest.raises(ValueError, match="mode='delta' only"):
            run(_sssp(), graph, mode="sync", mutations=[])
        with pytest.raises(ValueError, match="delta_threshold"):
            run(_sssp(), graph, mode="sync", delta_threshold=1e-3)
        with pytest.raises(ValueError, match="vectorized"):
            run(_sssp(), graph, mode="delta", vectorized="require")
        with pytest.raises(ValueError, match="backend"):
            run(_sssp(), graph, mode="delta", backend="process")
        with pytest.raises(ValueError, match="direction"):
            run(_sssp(), graph, mode="delta", direction="auto")
        with pytest.raises(ValueError, match="scheduling"):
            run_delta(_sssp(), graph, scheduling="greedy")

    def test_runner_dispatches_delta(self):
        graph = _graph(7)
        res = run(_sssp(), graph, mode="delta",
                  config=EngineConfig(threads=2, seed=0))
        assert res.mode == "delta"
        assert np.array_equal(res.result(), _recompute(_sssp, graph))

    def test_resolve_kernel_walks_mro(self):
        """BFS has no kernel of its own; it inherits SSSP's because it
        does not override update()."""
        kernel_cls = resolve_delta_kernel(BFS())
        assert kernel_cls is resolve_delta_kernel(_sssp())


class TestDeltaTelemetry:
    def test_phases_and_spans(self):
        from repro.obs import Telemetry

        sink = Telemetry()
        res = run_delta(_sssp(), _graph(7), EngineConfig(seed=0),
                        telemetry=sink)
        assert res.converged
        assert len(sink.spans) == res.num_iterations
        phases = set()
        for span in sink.spans:
            phases.update(span.extra.get("phases", {}))
        assert {"delta_commit", "delta_propagate"} <= phases

    def test_metrics_registry(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        run_delta(_sssp(), _graph(7), EngineConfig(seed=0), metrics=metrics)
        text = metrics.to_prometheus()
        assert "delta_commit" in text


# ---------------------------------------------------------------------------
# _fold_arr algebra (property-based, incl. NaN / ±inf) — mirrors the
# CombineOp.fold suite in test_push_mode.py; the array fold must agree
# with the scalar algebra the eligibility probe verifies.
# ---------------------------------------------------------------------------

_any_float = st.floats(allow_nan=True, allow_infinity=True)
_exact_ints = st.integers(-(2 ** 26), 2 ** 26).map(float)
_FOLD_SETTINGS = dict(max_examples=200, deadline=None)
_OPS = (CombineOp.MIN, CombineOp.MAX, CombineOp.ADD)


def _aeq(a: np.ndarray, b: np.ndarray) -> bool:
    return np.array_equal(np.atleast_1d(a), np.atleast_1d(b),
                          equal_nan=True)


class TestFoldArrProperties:
    @settings(**_FOLD_SETTINGS)
    @given(st.lists(_any_float, min_size=1, max_size=8),
           st.lists(_any_float, min_size=1, max_size=8))
    def test_commutative(self, xs, ys):
        k = min(len(xs), len(ys))
        a, b = np.array(xs[:k]), np.array(ys[:k])
        for op in _OPS:
            assert _aeq(_fold_arr(op, a, b), _fold_arr(op, b, a)), op

    @settings(**_FOLD_SETTINGS)
    @given(_any_float, _any_float, _any_float)
    def test_min_max_associative(self, a, b, c):
        a, b, c = np.array([a]), np.array([b]), np.array([c])
        for op in (CombineOp.MIN, CombineOp.MAX):
            assert _aeq(_fold_arr(op, _fold_arr(op, a, b), c),
                        _fold_arr(op, a, _fold_arr(op, b, c))), op

    @settings(**_FOLD_SETTINGS)
    @given(_exact_ints, _exact_ints, _exact_ints)
    def test_add_associative_on_exact_values(self, a, b, c):
        op = CombineOp.ADD
        a, b, c = np.array([a]), np.array([b]), np.array([c])
        assert _aeq(_fold_arr(op, _fold_arr(op, a, b), c),
                    _fold_arr(op, a, _fold_arr(op, b, c)))

    @settings(**_FOLD_SETTINGS)
    @given(st.lists(_any_float, min_size=1, max_size=8))
    def test_identity_element(self, xs):
        a = np.array(xs)
        for op in _OPS:
            ident = np.full(a.shape, op.identity)
            assert _aeq(_fold_arr(op, ident, a), a), op

    @settings(**_FOLD_SETTINGS)
    @given(st.lists(_any_float, min_size=1, max_size=8))
    def test_min_max_idempotent(self, xs):
        a = np.array(xs)
        for op in (CombineOp.MIN, CombineOp.MAX):
            assert _aeq(_fold_arr(op, a, a), a), op

    @settings(**_FOLD_SETTINGS)
    @given(_any_float)
    def test_matches_scalar_fold(self, v):
        """The array fold agrees with CombineOp.fold's scalar algebra
        (including its NaN-propagation contract) on every single value
        paired with a finite one."""
        for op in _OPS:
            arr = float(_fold_arr(op, np.array([v]), np.array([1.0]))[0])
            scalar = op.fold(v, 1.0)
            assert (arr != arr and scalar != scalar) or arr == scalar, op

    def test_nan_symmetric(self):
        nan = np.array([np.nan])
        one = np.array([1.0])
        for op in _OPS:
            assert np.isnan(_fold_arr(op, nan, one)[0])
            assert np.isnan(_fold_arr(op, one, nan)[0])


class TestAccumulationIdentityProperty:
    """The Maiter identity under randomized schedules: whatever the
    seed (i.e. commit permutation), x == x0 ⊕ accum exactly."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2 ** 31))
    def test_identity_across_schedules(self, seed):
        graph = generators.rmat(6, 8.0, seed=3)
        res = run_delta(_sssp(), graph, EngineConfig(threads=2, seed=seed))
        assert res.extra["delta"]["accumulation_identity"] is True
        assert np.array_equal(res.result(), _recompute(_sssp, graph))
