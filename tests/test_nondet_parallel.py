"""Backend equivalence for the shared-memory process backend.

The process backend distributes the vectorized nondeterministic model
across OS workers, each owning the thread intervals BLOCK dispatch
assigns it.  Because every edge slot has exactly one writing owner (the
paper's §II scope rule: only the endpoints touch an edge), the workers
never race on real memory, and the distributed run is *bit-identical*
to the single-process vectorized engine — which is itself bit-identical
to the object engine.  These tests pin that chain, the runner plumbing,
and the robustness ladder (worker death → WorkerDied → supervised
restart from barrier-consistent state).
"""

import multiprocessing as mp
import os
import signal

import numpy as np
import pytest

from repro.algorithms import PageRank, WeaklyConnectedComponents
from repro.engine import EngineConfig, ParallelEngine, parallel_fallback_reasons, run
from repro.graph import generators
from repro.obs import Recorder
from repro.robust import DegradationPolicy, WorkerDied, WorkerTimeout
from repro.theory import audit_run

from .test_nondet_vectorized import ALGORITHMS, assert_bit_identical

pytestmark = pytest.mark.parallel_backend


@pytest.fixture(scope="module")
def small_graph():
    return generators.rmat(6, 8.0, seed=3)


def run_backend_pair(factory, graph, config, **run_kwargs):
    """One vectorized run and one process-backend run, same configuration."""
    vec = run(factory(), graph, mode="nondeterministic", config=config,
              vectorized="require", **run_kwargs)
    proc = run(factory(), graph, mode="nondeterministic", config=config,
               backend="process", **run_kwargs)
    return vec, proc


# ---------------------------------------------------------------------------
# bit-identity: process backend == vectorized == object engine
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@pytest.mark.parametrize("workers", [1, 4])
def test_process_backend_bit_identical(small_graph, algo, workers):
    config = EngineConfig(threads=workers, seed=0, jitter=0.5)
    vec, proc = run_backend_pair(ALGORITHMS[algo], small_graph, config)
    assert proc.extra.get("backend") == "process"
    assert proc.extra.get("workers") == workers
    assert proc.extra.get("vectorized") is True
    assert proc.mode == "nondeterministic"
    assert_bit_identical(vec, proc)
    # the fix-point decomposition must not change the pass count either
    assert proc.extra["fixpoint_passes"] == vec.extra["fixpoint_passes"]


def test_process_backend_state_reachable_by_object_engine(small_graph):
    """Satellite check: the distributed run's final state passes the
    Lemma-2 audit, i.e. it is a state the object engine could reach."""
    config = EngineConfig(threads=4, seed=1, jitter=0.5)
    proc = run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
               config=config, backend="process")
    assert audit_run(proc) == []


def test_process_backend_jitter_zero_and_many_workers():
    graph = generators.rmat(4, 8.0, seed=5)
    # 64 workers > |V|: some workers own no vertices in every iteration
    for workers in (2, 64):
        config = EngineConfig(threads=workers, seed=2, jitter=0.0)
        vec, proc = run_backend_pair(WeaklyConnectedComponents, graph, config)
        assert_bit_identical(vec, proc)


# ---------------------------------------------------------------------------
# runner plumbing
# ---------------------------------------------------------------------------

def test_runner_rejects_unknown_backend(small_graph):
    with pytest.raises(ValueError, match="not understood"):
        run(PageRank(), small_graph, mode="nondeterministic",
            backend="gpu")


def test_runner_rejects_backend_outside_nondeterministic(small_graph):
    with pytest.raises(ValueError, match="nondeterministic"):
        run(PageRank(), small_graph, mode="sync", backend="process")


def test_runner_rejects_backend_plus_vectorized(small_graph):
    with pytest.raises(ValueError, match="not both"):
        run(PageRank(), small_graph, mode="nondeterministic",
            backend="process", vectorized=True)


def test_backend_rejects_ineligible_config(small_graph):
    reasons = parallel_fallback_reasons(
        PageRank(), EngineConfig(keep_conflict_events=True))
    assert reasons  # the config is genuinely ineligible
    with pytest.raises(ValueError, match="keep_conflict_events"):
        run(PageRank(), small_graph, mode="nondeterministic",
            backend="process",
            config=EngineConfig(threads=2, keep_conflict_events=True))


def test_empty_backend_string_means_in_process(small_graph):
    res = run(PageRank(epsilon=1e-2), small_graph, mode="nondeterministic",
              config=EngineConfig(threads=2, seed=0), backend="")
    assert "backend" not in res.extra


def test_engine_instance_is_reusable(small_graph):
    """A ParallelEngine can run twice and reuses its warm worker pool."""
    engine = ParallelEngine()
    try:
        config = EngineConfig(threads=2, seed=0, jitter=0.5)
        a = engine.run(PageRank(epsilon=1e-3), small_graph, config)
        b = engine.run(PageRank(epsilon=1e-3), small_graph, config)
        assert a.extra["pool_reused"] is False
        assert b.extra["pool_reused"] is True
        assert_bit_identical(a, b)
    finally:
        engine.close()


def test_pool_reuse_survives_config_changes(small_graph):
    """Seed/jitter/delay changes reuse the pool (the plan is re-broadcast
    every iteration); changing P or the program tears it down."""
    engine = ParallelEngine()
    try:
        base = EngineConfig(threads=2, seed=0)
        engine.run(WeaklyConnectedComponents(), small_graph, base)
        jittered = engine.run(WeaklyConnectedComponents(), small_graph,
                              EngineConfig(threads=2, seed=5, jitter=0.5))
        assert jittered.extra["pool_reused"] is True
        solo = run(WeaklyConnectedComponents(), small_graph,
                   mode="nondeterministic",
                   config=EngineConfig(threads=2, seed=5, jitter=0.5),
                   vectorized="require")
        assert_bit_identical(solo, jittered)
        wider = engine.run(WeaklyConnectedComponents(), small_graph,
                           EngineConfig(threads=3, seed=0))
        assert wider.extra["pool_reused"] is False
        other = engine.run(PageRank(epsilon=1e-3), small_graph,
                           EngineConfig(threads=3, seed=0))
        assert other.extra["pool_reused"] is False
    finally:
        engine.close()


def test_pool_reuse_keeps_delay_model_in_sync(small_graph):
    """The batched barrier message only ships the delay model when it
    changes; a fault-injection schedule that flips it per iteration must
    still match the single-process run."""
    from repro.robust import supervised_run

    config = EngineConfig(threads=2, seed=3, jitter=0.25)
    plan = "delay@1:x3;delay@3:x7"
    solo = supervised_run(WeaklyConnectedComponents(), small_graph,
                          mode="nondeterministic", config=config,
                          faults=plan, vectorized="require")
    proc = supervised_run(WeaklyConnectedComponents(), small_graph,
                          mode="nondeterministic", config=config,
                          faults=plan, backend="process")
    assert_bit_identical(solo, proc)


# ---------------------------------------------------------------------------
# observability: recorder provenance and checkpoint/resume
# ---------------------------------------------------------------------------

def test_recorder_events_identical_to_vectorized(small_graph):
    config = EngineConfig(threads=3, seed=0, jitter=0.5)
    rec_vec, rec_proc = Recorder(), Recorder()
    vec = run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
              config=config, vectorized="require", record=rec_vec)
    proc = run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
               config=config, backend="process", record=rec_proc)
    assert_bit_identical(vec, proc)
    assert len(rec_vec.events) > 0
    assert rec_vec.events == rec_proc.events


def test_checkpoint_resume_across_backends(small_graph, tmp_path):
    """A checkpoint written by the process backend resumes on the
    single-process engine bit-identically (and vice versa): the
    barrier-consistent master state is backend-agnostic."""
    ck = str(tmp_path / "par.ckpt")
    config = EngineConfig(threads=2, seed=0, jitter=0.5)
    with pytest.raises(Exception):
        run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
            config=config, backend="process", faults="crash@2",
            checkpoint=ck, policy=DegradationPolicy(max_restarts=0))
    resumed = run(PageRank(epsilon=1e-3), small_graph,
                  mode="nondeterministic", resume_from=ck,
                  vectorized="require")
    clean = run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
                config=config, vectorized="require")
    # A resumed result only reports post-resume iteration stats; the
    # committed state and global trajectory must still match exactly.
    assert resumed.converged and resumed.num_iterations == clean.num_iterations
    for f in clean.state.vertex_field_names:
        assert np.array_equal(resumed.state.vertex(f), clean.state.vertex(f))
    for f in clean.state.edge_field_names:
        assert np.array_equal(resumed.state.edge(f), clean.state.edge(f))


# ---------------------------------------------------------------------------
# robustness ladder: worker death
# ---------------------------------------------------------------------------

def _kill_one_worker_at(iteration_to_kill):
    """Observer that SIGKILLs one backend worker once, mid-run."""
    state = {"done": False}

    def observer(iteration, _state, _next_ids):
        if state["done"] or iteration < iteration_to_kill:
            return
        victims = [p for p in mp.active_children()
                   if p.name.startswith("repro-nondet-worker")]
        if victims:
            state["done"] = True
            os.kill(victims[0].pid, signal.SIGKILL)

    return observer


def test_worker_sigkill_raises_worker_died(small_graph):
    config = EngineConfig(threads=2, seed=0, jitter=0.5)
    with pytest.raises(WorkerDied) as exc:
        run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
            config=config, backend="process",
            observer=_kill_one_worker_at(1))
    # WorkerDied extends WorkerTimeout so the existing robustness ladder
    # (watchdog classification, restart policy) applies unchanged.
    assert isinstance(exc.value, WorkerTimeout)
    assert exc.value.workers  # names the culprit, not clean-exit siblings


def test_supervised_restart_recovers_from_worker_death(small_graph):
    config = EngineConfig(threads=2, seed=0, jitter=0.5)
    res = run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
              config=config, backend="process",
              observer=_kill_one_worker_at(1),
              policy=DegradationPolicy(max_restarts=2, backoff_s=0.0))
    actions = [d["action"] for d in res.extra["degradations"]]
    assert "restart" in actions
    assert res.extra["degradations"][0]["cause"] == "WorkerDied"
    clean = run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
                config=config, vectorized="require")
    # A restarted run replays from the last barrier: final state and the
    # global trajectory match the uninterrupted run bit-for-bit (the
    # post-restart stats list necessarily starts at the resume point).
    assert res.converged and res.num_iterations == clean.num_iterations
    for f in clean.state.vertex_field_names:
        assert np.array_equal(res.state.vertex(f), clean.state.vertex(f))
    for f in clean.state.edge_field_names:
        assert np.array_equal(res.state.edge(f), clean.state.edge(f))
