"""Bit-for-bit equivalence of the vectorized nondeterministic fast path.

The vectorized engine re-derives every observable of a
``NondeterministicEngine`` run — committed values, iteration counts,
frontier trajectory, conflict totals, per-thread work profiles — from
whole-graph array passes (batched Defs. 1–3 visibility, Lemma-2 commits
as a lexicographic argmax).  These tests pin the contract: for every
eligible program and configuration the two engines are *bit-identical*,
and for every ineligible one the runner falls back transparently.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    BFS,
    SSSP,
    MaxLabelPropagation,
    PageRank,
    PrioritizedSSSP,
    SpMV,
    WeaklyConnectedComponents,
)
from repro.engine import (
    AtomicityPolicy,
    DelayModel,
    DispatchPolicy,
    EngineConfig,
    VectorizedNondetEngine,
    fallback_reasons,
    make_plan,
    plan_arrays,
    resolve_nondet_kernel,
    run,
)
from repro.graph import DiGraph, generators

ALGORITHMS = {
    "wcc": WeaklyConnectedComponents,
    "pagerank": lambda: PageRank(epsilon=1e-3),
    "sssp": lambda: SSSP(source=0),
    "bfs": lambda: BFS(source=0),
    "spmv": SpMV,
}


def run_pair(factory, graph, config, **run_kwargs):
    """One object run and one vectorized run of the same configuration."""
    obj = run(factory(), graph, mode="nondeterministic", config=config, **run_kwargs)
    vec = run(
        factory(),
        graph,
        mode="nondeterministic",
        config=config,
        vectorized="require",
        **run_kwargs,
    )
    return obj, vec


def assert_bit_identical(a, b):
    """Every observable of the two runs must match exactly."""
    for f in a.state.vertex_field_names:
        assert np.array_equal(a.state.vertex(f), b.state.vertex(f)), f"vertex {f}"
    for f in a.state.edge_field_names:
        assert np.array_equal(a.state.edge(f), b.state.edge(f)), f"edge {f}"
    assert a.num_iterations == b.num_iterations
    assert a.converged == b.converged
    assert a.conflicts.summary() == b.conflicts.summary()
    assert dict(a.conflicts.per_iteration) == dict(b.conflicts.per_iteration)
    assert len(a.iterations) == len(b.iterations)
    for sa, sb in zip(a.iterations, b.iterations):
        assert sa.num_active == sb.num_active
        assert sa.updates_per_thread == sb.updates_per_thread
        assert sa.reads_per_thread == sb.reads_per_thread
        assert sa.writes_per_thread == sb.writes_per_thread


@pytest.fixture(scope="module")
def small_graph():
    return generators.rmat(6, 8.0, seed=3)


@pytest.fixture(scope="module")
def loopy_graph():
    """A graph with self-loops and parallel edges (DiGraph keeps both)."""
    rng = np.random.default_rng(9)
    return DiGraph(20, rng.integers(0, 20, 120), rng.integers(0, 20, 120))


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@pytest.mark.parametrize("policy", [DispatchPolicy.BLOCK, DispatchPolicy.ROUND_ROBIN])
@pytest.mark.parametrize("jitter", [0.0, 0.5])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_equivalence_grid(small_graph, algo, policy, jitter, seed):
    config = EngineConfig(threads=4, seed=seed, jitter=jitter, dispatch=policy)
    obj, vec = run_pair(ALGORITHMS[algo], small_graph, config)
    assert vec.extra.get("vectorized") is True
    assert vec.mode == "nondeterministic"
    assert_bit_identical(obj, vec)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_equivalence_selfloops_and_parallel_edges(loopy_graph, algo):
    for seed in (0, 1):
        config = EngineConfig(threads=3, seed=seed, jitter=0.5)
        obj, vec = run_pair(ALGORITHMS[algo], loopy_graph, config)
        assert_bit_identical(obj, vec)


@pytest.mark.parametrize(
    "threads", [1, 2, 64]  # 64 > |V| of the rmat-4 graph: idle threads
)
def test_equivalence_thread_extremes(threads):
    graph = generators.rmat(4, 8.0, seed=5)
    config = EngineConfig(threads=threads, seed=1, jitter=0.5)
    obj, vec = run_pair(WeaklyConnectedComponents, graph, config)
    assert_bit_identical(obj, vec)


@pytest.mark.parametrize(
    "delay_model",
    [
        DelayModel.numa(2, intra=2.0, inter=8.0),
        DelayModel.distributed(4, intra=2.0, network=64.0),
    ],
)
def test_equivalence_nonuniform_delays(small_graph, delay_model):
    config = EngineConfig(threads=8, seed=2, jitter=0.5, delay_model=delay_model)
    obj, vec = run_pair(lambda: SSSP(source=0), small_graph, config)
    assert_bit_identical(obj, vec)


def test_equivalence_frontier_trajectory(small_graph):
    """The per-iteration frontier sets handed to observers are identical."""
    traces = []
    for kwargs in ({}, {"vectorized": "require"}):
        seen = []
        run(
            WeaklyConnectedComponents(),
            small_graph,
            mode="nondeterministic",
            config=EngineConfig(threads=4, seed=3, jitter=0.5),
            observer=lambda it, state, nxt: seen.append((it, sorted(nxt))),
            **kwargs,
        )
        traces.append(seen)
    assert traces[0] == traces[1]


def test_prioritized_program_inherits_kernel(small_graph):
    """PrioritizedSSSP overrides only ``priority`` (a pure-async hook), so
    it resolves SSSP's kernel and matches the object engine exactly."""
    assert resolve_nondet_kernel(PrioritizedSSSP(source=0)) is not None
    config = EngineConfig(threads=4, seed=0, jitter=0.5)
    obj, vec = run_pair(lambda: PrioritizedSSSP(source=0), small_graph, config)
    assert_bit_identical(obj, vec)


# ---------------------------------------------------------------------------
# Property-based: arbitrary small graphs and configurations.
# ---------------------------------------------------------------------------


@st.composite
def graph_and_config(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    m = draw(st.integers(min_value=1, max_value=40))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    graph = DiGraph(n, [u for u, _ in edges], [v for _, v in edges])
    config = EngineConfig(
        threads=draw(st.integers(1, 6)),
        delay=float(draw(st.integers(1, 4))),
        jitter=draw(st.sampled_from([0.0, 0.3, 0.9])),
        dispatch=draw(st.sampled_from(list(DispatchPolicy))),
        seed=draw(st.integers(0, 1_000)),
    )
    return graph, config


HYPOTHESIS_COMMON = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(graph_and_config(), st.sampled_from(sorted(ALGORITHMS)))
@settings(**HYPOTHESIS_COMMON)
def test_equivalence_property(data, algo):
    graph, config = data
    obj, vec = run_pair(ALGORITHMS[algo], graph, config)
    assert_bit_identical(obj, vec)


# ---------------------------------------------------------------------------
# Building blocks: plan arrays and pairwise delays.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", [DispatchPolicy.BLOCK, DispatchPolicy.ROUND_ROBIN])
@pytest.mark.parametrize("k,p", [(0, 4), (1, 4), (7, 3), (12, 4), (5, 8)])
def test_plan_arrays_matches_make_plan(policy, k, p):
    active = np.arange(10, 10 + k, dtype=np.int64)
    for jitter, seed in ((0.0, 0), (0.9, 7)):
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        plan = make_plan(active, p, policy=policy, jitter=jitter, rng=rng_a)
        thread, pi, time = plan_arrays(active, p, policy=policy, jitter=jitter, rng=rng_b)
        for i, vid in enumerate(active.tolist()):
            slot = plan.slots[vid]
            assert slot.thread == thread[i]
            assert slot.pi == pi[i]
            assert slot.time == time[i]  # bit-equal, incl. the jitter draw
        # Both consumed the same number of stream draws.
        assert rng_a.uniform() == rng_b.uniform()


def test_delay_model_delays_array():
    dm = DelayModel.numa(2, intra=2.0, inter=8.0)
    a = np.array([0, 0, 2, 3])
    b = np.array([1, 2, 3, 3])
    # threads 0,1 share group 0; threads 2,3 share group 1.
    assert dm.delays(a, b).tolist() == [2.0, 8.0, 2.0, 2.0]
    assert not dm.is_uniform
    uni = DelayModel.uniform(3.0)
    assert uni.is_uniform
    assert uni.delays(a, b).tolist() == [3.0] * 4
    for x, y in zip(a.tolist(), b.tolist()):
        assert dm.delay(x, y) == dm.delays(np.array([x]), np.array([y]))[0]


# ---------------------------------------------------------------------------
# Eligibility and fallback.
# ---------------------------------------------------------------------------


def test_fallback_reasons_enumerates_blockers():
    prog = WeaklyConnectedComponents()
    assert fallback_reasons(prog, EngineConfig()) == []
    assert fallback_reasons(prog, EngineConfig(atomicity=AtomicityPolicy.NONE))
    assert fallback_reasons(prog, EngineConfig(fp_noise=True))
    assert fallback_reasons(prog, EngineConfig(validate_scope=True))
    assert fallback_reasons(prog, EngineConfig(keep_conflict_events=True))
    assert fallback_reasons(MaxLabelPropagation(), EngineConfig())  # no kernel


def test_unregistered_update_override_falls_back(small_graph):
    class TweakedWCC(WeaklyConnectedComponents):
        def update(self, ctx):  # semantics unchanged, identity changed
            return super().update(ctx)

    assert resolve_nondet_kernel(TweakedWCC()) is None
    config = EngineConfig(threads=4, seed=0)
    # Silent fallback still runs — and equals the object engine.
    res = run(TweakedWCC(), small_graph, mode="nondeterministic", config=config, vectorized=True)
    ref = run(TweakedWCC(), small_graph, mode="nondeterministic", config=config)
    assert_bit_identical(ref, res)
    with pytest.raises(ValueError, match="not eligible"):
        run(
            TweakedWCC(),
            small_graph,
            mode="nondeterministic",
            config=config,
            vectorized="require",
        )


def test_silent_fallback_on_ineligible_config(small_graph):
    config = EngineConfig(threads=4, seed=0, keep_conflict_events=True)
    res = run(
        WeaklyConnectedComponents(),
        small_graph,
        mode="nondeterministic",
        config=config,
        vectorized=True,
    )
    ref = run(WeaklyConnectedComponents(), small_graph, mode="nondeterministic", config=config)
    assert res.extra.get("vectorized") is None
    assert_bit_identical(ref, res)


def test_vectorized_requires_nondeterministic_mode(small_graph):
    with pytest.raises(ValueError, match="nondeterministic"):
        run(WeaklyConnectedComponents(), small_graph, mode="sync", vectorized=True)


def test_vectorized_rejects_unknown_string(small_graph):
    with pytest.raises(ValueError, match="not understood"):
        run(
            WeaklyConnectedComponents(),
            small_graph,
            mode="nondeterministic",
            vectorized="requre",
        )


def test_direct_engine_rejects_ineligible(small_graph):
    config = EngineConfig(atomicity=AtomicityPolicy.NONE)
    with pytest.raises(ValueError):
        VectorizedNondetEngine().run(WeaklyConnectedComponents(), small_graph, config)


def test_conflict_totals_independent_of_event_retention(small_graph):
    """S6 guard: dropping per-event tuples must not change any counter."""
    for keep in (False, True):
        cfgs = [
            EngineConfig(threads=4, seed=1, jitter=0.5, keep_conflict_events=k)
            for k in (keep, not keep)
        ]
        a = run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic", config=cfgs[0])
        b = run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic", config=cfgs[1])
        assert a.conflicts.summary() == b.conflicts.summary()
        assert dict(a.conflicts.per_iteration) == dict(b.conflicts.per_iteration)
        assert np.array_equal(a.result(), b.result())


def test_fixpoint_pass_count_reported(small_graph):
    vec = run(
        WeaklyConnectedComponents(),
        small_graph,
        mode="nondeterministic",
        config=EngineConfig(threads=4, seed=0, jitter=0.5),
        vectorized="require",
    )
    assert vec.extra["fixpoint_passes"] >= vec.num_iterations


def test_resume_from_state_matches(small_graph):
    """state= resume (convergence-chain style) is honoured by the fast path."""
    config = EngineConfig(threads=4, seed=4, jitter=0.5)
    first = run(
        WeaklyConnectedComponents(),
        small_graph,
        mode="nondeterministic",
        config=EngineConfig(threads=4, seed=4, jitter=0.5, max_iterations=2),
    )
    obj = run(
        WeaklyConnectedComponents(),
        small_graph,
        mode="nondeterministic",
        config=config,
        state=first.state.copy(),
    )
    vec = run(
        WeaklyConnectedComponents(),
        small_graph,
        mode="nondeterministic",
        config=config,
        state=first.state.copy(),
        vectorized="require",
    )
    assert_bit_identical(obj, vec)
