"""Worker trace segments, the barrier-epoch merge, and phase reports.

Covers the cross-backend observability acceptance: a scale-12
``backend="process"`` run yields a merged trace whose per-iteration
phase sums match the span wall time within 5%, with per-worker
``barrier_wait`` attribution — and attaching the profiler never changes
a bit of the computation.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.algorithms import PageRank, WeaklyConnectedComponents
from repro.engine import EngineConfig, run
from repro.graph import generators
from repro.obs import (
    MetricsRegistry,
    Recorder,
    Telemetry,
    lint_trace,
    merge_worker_traces,
    phase_report,
    phase_table,
    read_trace,
)
from repro.storage import ShardStore


def _profiled_run(graph, tmp_path, *, name="run", algorithm=None,
                  config=None, metrics=None, **kw):
    """Run with a streaming sink + worker segments; return (res, trace)."""
    trace = str(tmp_path / f"{name}.jsonl")
    sink = Telemetry(trace_path=trace, worker_dir=trace + ".workers")
    res = run(algorithm or WeaklyConnectedComponents(), graph,
              mode="nondeterministic",
              config=config or EngineConfig(threads=4, seed=0, jitter=0.5),
              telemetry=sink, metrics=metrics, **kw)
    return res, trace


def _no_errors(records):
    issues = [i for i in lint_trace(records) if i.severity == "error"]
    assert not issues, [str(i) for i in issues]


# ---------------------------------------------------------------------------
# Acceptance: scale-12 process backend
# ---------------------------------------------------------------------------

class TestProcessBackendAcceptance:
    @pytest.fixture(scope="class")
    def merged_setup(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("scale12")
        graph = generators.rmat(12, 8.0, seed=5)
        reg = MetricsRegistry()
        res, trace = _profiled_run(graph, tmp, backend="process",
                                   metrics=reg)
        merged_path = str(tmp / "merged.jsonl")
        merged = merge_worker_traces(trace, out_path=merged_path)
        return res, trace, merged, merged_path, reg

    def test_merged_trace_lints_clean(self, merged_setup):
        res, _, merged, merged_path, _ = merged_setup
        assert res.converged
        _no_errors(merged)
        _no_errors(read_trace(merged_path))

    def test_phase_sums_match_wall_time(self, merged_setup):
        _, _, merged, _, _ = merged_setup
        spans = [r for r in merged if r.get("type") == "iteration"]
        assert spans
        for rec in spans:
            wall = rec["wall_time_s"]
            phases = rec["extra"]["phases"]
            assert abs(sum(phases.values()) - wall) <= 0.05 * wall + 2e-3, (
                f"iteration {rec['iteration']}: phase sum "
                f"{sum(phases.values()):.6f}s vs wall {wall:.6f}s")

    def test_every_worker_reports_barrier_wait(self, merged_setup):
        res, _, merged, _, _ = merged_setup
        workers = res.extra["workers"]
        wspans = [r for r in merged if r.get("type") == "worker_span"]
        assert {r["worker"] for r in wspans} == set(range(workers))
        for r in wspans:
            assert "barrier_wait" in r["phases"]

    def test_worker_epochs_match_master(self, merged_setup):
        _, _, merged, _, _ = merged_setup
        master_epoch = {r["iteration"]: r["extra"]["barrier_epoch"]
                        for r in merged if r.get("type") == "iteration"}
        for r in merged:
            if r.get("type") == "worker_span":
                assert r["epoch"] == master_epoch[r["iteration"]], (
                    f"worker {r['worker']} iteration {r['iteration']}")

    def test_worker_spans_precede_master_span(self, merged_setup):
        _, _, merged, _, _ = merged_setup
        seen_master: set[int] = set()
        for r in merged:
            if r.get("type") == "iteration":
                seen_master.add(r["iteration"])
            elif r.get("type") == "worker_span":
                assert r["iteration"] not in seen_master

    def test_merge_is_byte_deterministic(self, merged_setup, tmp_path):
        _, trace, _, merged_path, _ = merged_setup
        again = str(tmp_path / "again.jsonl")
        merge_worker_traces(trace, out_path=again)
        with open(merged_path, "rb") as a, open(again, "rb") as b:
            assert a.read() == b.read()

    def test_metrics_fold_worker_counters(self, merged_setup):
        res, _, _, _, reg = merged_setup
        workers = res.extra["workers"]
        per_worker = [
            reg.counter("repro_worker_kernel_passes_total",
                        worker=str(w)).value
            for w in range(workers)
        ]
        assert sum(per_worker) > 0
        assert reg.counter("repro_iterations_total",
                           mode="process").value == res.num_iterations

    def test_phase_report_renders(self, merged_setup):
        res, _, merged, _, _ = merged_setup
        report = phase_report(merged)
        assert len(report["iterations"]) == res.num_iterations
        assert report["workers"] == list(range(res.extra["workers"]))
        assert "barrier_wait" in report["phases"]
        for w, phases in report["totals"]["worker_phases"].items():
            assert phases.get("barrier_wait", 0.0) >= 0.0
        table = phase_table(report)
        assert "worker skew" in table
        assert "barrier_wait" in table


# ---------------------------------------------------------------------------
# Bit identity with the profiler attached
# ---------------------------------------------------------------------------

class TestProfiledBitIdentity:
    def test_process_backend_profiled_identical(self, rmat_small, tmp_path):
        config = EngineConfig(threads=4, seed=1, jitter=0.5)
        bare = run(PageRank(epsilon=1e-3), rmat_small,
                   mode="nondeterministic", config=config,
                   vectorized="require")
        prof, _ = _profiled_run(
            rmat_small, tmp_path, algorithm=PageRank(epsilon=1e-3),
            config=config, backend="process", metrics=MetricsRegistry())
        assert np.array_equal(np.asarray(bare.state.vertex("rank")),
                              np.asarray(prof.state.vertex("rank")))
        assert bare.conflicts.read_write == prof.conflicts.read_write
        assert bare.conflicts.write_write == prof.conflicts.write_write
        assert (bare.extra["fixpoint_passes"]
                == prof.extra["fixpoint_passes"])

    def test_recorder_events_unchanged_by_profiler(self, rmat_small,
                                                   tmp_path):
        config = EngineConfig(threads=2, seed=1, jitter=0.5)
        rec_bare, rec_prof = Recorder(), Recorder()
        run(WeaklyConnectedComponents(), rmat_small,
            mode="nondeterministic", config=config, backend="process",
            record=rec_bare)
        _profiled_run(rmat_small, tmp_path, config=config,
                      backend="process", metrics=MetricsRegistry(),
                      record=rec_prof)
        assert rec_bare.events == rec_prof.events


# ---------------------------------------------------------------------------
# Torn worker segments (SIGKILL mid-write)
# ---------------------------------------------------------------------------

class TestTornSegments:
    def test_truncated_worker_segment_surfaces_as_event(self, rmat_small,
                                                        tmp_path):
        res, trace = _profiled_run(rmat_small, tmp_path, backend="process")
        seg = os.path.join(trace + ".workers", "worker-0.jsonl")
        with open(seg, "a", encoding="utf-8") as fh:
            # A worker killed mid-write leaves a torn final line.
            fh.write('{"type":"worker_span","worker":0,"iterat')
        merged = merge_worker_traces(trace)
        truncs = [r for r in merged
                  if r.get("type") == "event"
                  and r.get("name") == "worker_segment_truncated"]
        assert len(truncs) == 1
        assert truncs[0]["worker"] == 0
        # The torn line cost only itself: intact spans still merge, and
        # the merged trace still ends with the master's run_end.
        assert any(r.get("type") == "worker_span" and r["worker"] == 0
                   for r in merged)
        assert merged[-1]["type"] == "run_end"
        _no_errors(merged)

    def test_intact_segments_have_no_truncation_events(self, rmat_small,
                                                       tmp_path):
        _, trace = _profiled_run(rmat_small, tmp_path, backend="process")
        merged = merge_worker_traces(trace)
        assert not any(r.get("name") == "worker_segment_truncated"
                       for r in merged if r.get("type") == "event")


# ---------------------------------------------------------------------------
# Master-only traces (no worker segments on disk)
# ---------------------------------------------------------------------------

class TestMasterOnlyFallback:
    def test_folded_worker_phases_back_fill_the_report(self, rmat_small,
                                                       tmp_path):
        trace = str(tmp_path / "master.jsonl")
        # No worker_dir: segments are never written, but the master
        # span folds per-worker phase rows into extra["worker_phases"].
        sink = Telemetry(trace_path=trace)
        res = run(WeaklyConnectedComponents(), rmat_small,
                  mode="nondeterministic",
                  config=EngineConfig(threads=4, seed=0, jitter=0.5),
                  backend="process", telemetry=sink)
        records = read_trace(trace)
        assert not os.path.isdir(trace + ".workers")
        report = phase_report(records)
        assert report["workers"] == list(range(res.extra["workers"]))
        busy = report["totals"]["worker_phases"]
        assert any(p.get("barrier_wait", 0.0) > 0.0 for p in busy.values())
        assert "worker skew" in phase_table(report)

    def test_merge_without_segments_is_identity(self, rmat_small, tmp_path):
        trace = str(tmp_path / "master.jsonl")
        sink = Telemetry(trace_path=trace)
        run(WeaklyConnectedComponents(), rmat_small,
            mode="nondeterministic", config=EngineConfig(threads=2, seed=0),
            backend="process", telemetry=sink)
        assert merge_worker_traces(trace) == read_trace(trace)


# ---------------------------------------------------------------------------
# Out-of-core backend
# ---------------------------------------------------------------------------

class TestOutOfCoreMerge:
    def test_ooc_process_backend_merged_trace(self, tmp_path):
        graph = generators.rmat(8, 8.0, seed=3)
        store = ShardStore.build(graph, tmp_path / "g.shards", 4)
        config = EngineConfig(threads=2, seed=0, jitter=0.5)
        reg = MetricsRegistry()
        res, trace = _profiled_run(store, tmp_path, algorithm=PageRank(
            epsilon=1e-3), config=config, backend="process", metrics=reg)
        assert res.converged
        merged = merge_worker_traces(trace)
        _no_errors(merged)

        wspans = [r for r in merged if r.get("type") == "worker_span"]
        assert wspans
        for r in wspans:
            assert "barrier_wait" in r["phases"]
            assert r["sweeps"] >= 1
        master_epoch = {r["iteration"]: r["extra"]["barrier_epoch"]
                        for r in merged if r.get("type") == "iteration"}
        for r in wspans:
            assert r["epoch"] == master_epoch[r["iteration"]]

        # Sweeps fold into the master's named counter and the registry.
        end = next(r for r in merged if r.get("type") == "run_end")
        assert end["counters"]["worker.sweeps"] >= len(wspans)
        assert reg.counter("repro_iterations_total",
                           mode="outofcore").value == res.num_iterations
        workers = res.extra["workers"]
        swept = sum(
            reg.counter("repro_worker_sweeps_total", worker=str(w)).value
            for w in range(workers))
        assert swept == end["counters"]["worker.sweeps"]

        # shard_io is carved out of the enclosing phases on both sides.
        report = phase_report(merged)
        assert "shard_io" in report["phases"]
        assert report["totals"]["phases"].get("shard_io", 0.0) > 0.0

    def test_ooc_profiled_bit_identical(self, tmp_path):
        graph = generators.rmat(6, 8.0, seed=3)
        store = ShardStore.build(graph, tmp_path / "g.shards", 4)
        config = EngineConfig(threads=2, seed=1, jitter=0.5)
        bare = run(PageRank(epsilon=1e-3), graph, mode="nondeterministic",
                   config=config, vectorized="require")
        prof, _ = _profiled_run(store, tmp_path, algorithm=PageRank(
            epsilon=1e-3), config=config, backend="process",
            metrics=MetricsRegistry())
        assert np.array_equal(np.asarray(bare.state.vertex("rank")),
                              np.asarray(prof.state.vertex("rank")))
        assert (bare.extra["fixpoint_passes"]
                == prof.extra["fixpoint_passes"])
