"""Metrics registry, phase clock, and engine `metrics=` plumbing.

The registry's cross-process merge semantics (counters/buckets summed,
gauges last-write-wins), the Prometheus/JSON exposition, the PhaseClock
sum invariant, and the uniform per-iteration series every
nondeterministic backend records — plus the contract that a
``{"type": "metrics"}`` snapshot embedded in a JSONL trace is invisible
to every existing trace reader.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import PageRank, WeaklyConnectedComponents
from repro.engine import EngineConfig, run
from repro.graph import generators
from repro.obs import (
    PHASES,
    MetricsRegistry,
    PhaseClock,
    Telemetry,
    lint_trace,
    peak_rss_bytes,
    read_trace,
    record_iteration_metrics,
    stats_from_trace,
    summarize_trace,
    write_trace,
)


# ---------------------------------------------------------------------------
# PhaseClock
# ---------------------------------------------------------------------------

class TestPhaseClock:
    def test_laps_sum_to_bracketed_wall_time(self):
        clock = PhaseClock()
        t0 = time.perf_counter()
        clock.start()
        for phase in ("plan_build", "gather", "lemma2_commit"):
            time.sleep(0.002)
            clock.lap(phase)
        wall = time.perf_counter() - t0
        acc = clock.drain()
        assert set(acc) == {"plan_build", "gather", "lemma2_commit"}
        # Contiguous laps of one clock: the sum IS the bracketed time up
        # to the final drain's own cost.
        assert abs(sum(acc.values()) - wall) <= 0.05 * wall + 1e-4

    def test_split_preserves_sum(self):
        clock = PhaseClock()
        clock.add("gather", 1.0)
        clock.split("gather", "shard_io", 0.25)
        acc = clock.drain()
        assert acc["gather"] == pytest.approx(0.75)
        assert acc["shard_io"] == pytest.approx(0.25)
        assert sum(acc.values()) == pytest.approx(1.0)

    def test_split_nonpositive_is_noop(self):
        clock = PhaseClock()
        clock.add("gather", 1.0)
        clock.split("gather", "shard_io", 0.0)
        clock.split("gather", "shard_io", -1.0)
        assert clock.drain() == {"gather": 1.0}

    def test_drain_resets(self):
        clock = PhaseClock()
        clock.add("gather", 1.0)
        assert clock.drain() == {"gather": 1.0}
        assert clock.drain() == {}


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counter_labels_identify_series(self):
        reg = MetricsRegistry()
        reg.counter("c", mode="ne").inc(2)
        reg.counter("c", mode="de").inc(3)
        assert reg.counter("c", mode="ne").value == 2
        assert reg.counter("c", mode="de").value == 3

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("c").inc(-1)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_histogram_bucket_layout_is_sticky(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        with pytest.raises(ValueError, match="already registered with"):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("h", buckets=(2.0, 1.0))

    def test_merge_sums_counters_and_buckets_lww_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, g in ((a, 1.0), (b, 9.0)):
            reg.counter("c", worker="0").inc(5)
            reg.gauge("g").set(g)
            reg.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
            reg.histogram("h", buckets=(1.0, 2.0)).observe(5.0)
        a.merge(b)
        assert a.counter("c", worker="0").value == 10
        assert a.gauge("g").value == 9.0  # last write wins
        h = a.histogram("h", buckets=(1.0, 2.0))
        assert h.count == 4
        assert h.counts == [2, 0, 2]
        assert h.sum == pytest.approx(11.0)

    def test_merge_accepts_snapshot_dict(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(7)
        a.merge(b.snapshot())
        assert a.counter("c").value == 7

    def test_merge_rejects_bucket_count_mismatch(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        snap = {"counters": [], "gauges": [],
                "histograms": [{"name": "h", "labels": {},
                                "buckets": [1.0, 2.0],
                                "counts": [1, 0],  # missing the +Inf slot
                                "sum": 0.5, "count": 1}]}
        with pytest.raises(ValueError, match="buckets"):
            a.merge(snap)

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_updates_total", mode="ne").inc(3)
        reg.gauge("repro_frontier_size").set(17)
        h = reg.histogram("repro_iteration_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(50.0)
        text = reg.to_prometheus()
        assert "# TYPE repro_updates_total counter" in text
        assert 'repro_updates_total{mode="ne"} 3' in text
        assert "repro_frontier_size 17" in text
        # Cumulative buckets with the implicit +Inf slot.
        assert 'repro_iteration_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_iteration_seconds_bucket{le="1"} 2' in text
        assert 'repro_iteration_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_iteration_seconds_count 3" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c\nd').inc()
        text = reg.to_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_json_round_trips_through_merge(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c", mode="ne").inc(4)
        reg.histogram("h", buckets=(1.0,)).observe(2.0)
        other = MetricsRegistry()
        other.merge(json.loads(reg.to_json()))
        assert other.to_json() == reg.to_json()


@settings(max_examples=60, deadline=None)
@given(
    bounds=st.lists(st.floats(min_value=1e-6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=8, unique=True),
    values=st.lists(st.floats(min_value=0.0, max_value=2e6,
                              allow_nan=False, allow_infinity=False),
                    max_size=40),
)
def test_histogram_bucket_property(bounds, values):
    """Per-bucket counts match the le-inclusive rule; cumulation is
    monotone and ends at the total observation count."""
    buckets = tuple(sorted(bounds))
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=buckets)
    for v in values:
        h.observe(v)
    assert h.count == len(values)
    assert h.sum == pytest.approx(math.fsum(values))
    # Recompute each bucket's occupancy from the definition.
    expected = [0] * (len(buckets) + 1)
    for v in values:
        for i, ub in enumerate(buckets):
            if v <= ub:
                expected[i] += 1
                break
        else:
            expected[-1] += 1
    assert h.counts == expected
    cum = h.cumulative()
    assert cum == sorted(cum)
    assert cum[-1] == len(values)


# ---------------------------------------------------------------------------
# Engine plumbing: metrics= on every nondeterministic backend
# ---------------------------------------------------------------------------

class TestEngineMetrics:
    def test_object_engine_records_uniform_series(self, rmat_small):
        reg = MetricsRegistry()
        res = run(WeaklyConnectedComponents(), rmat_small,
                  mode="nondeterministic", config=EngineConfig(threads=4),
                  metrics=reg)
        assert res.converged
        assert (reg.counter("repro_iterations_total", mode="object").value
                == res.num_iterations)
        assert reg.counter("repro_updates_total", mode="object").value > 0
        total = sum(
            reg.counter("repro_phase_seconds_total", mode="object",
                        phase=p).value
            for p in PHASES)
        assert total > 0
        hist = reg.histogram("repro_iteration_seconds", mode="object")
        assert hist.count == res.num_iterations

    def test_vectorized_engine_phase_counters(self, rmat_small):
        reg = MetricsRegistry()
        res = run(WeaklyConnectedComponents(), rmat_small,
                  mode="nondeterministic", config=EngineConfig(threads=4),
                  vectorized="require", metrics=reg)
        assert res.converged
        # Every phase's standing-total counter agrees with the sum of
        # its histogram observations — same recording site, two views.
        by_phase = {}
        for p in PHASES:
            c = reg.counter("repro_phase_seconds_total", mode="vectorized",
                            phase=p).value
            h = reg.histogram("repro_phase_seconds", mode="vectorized",
                              phase=p)
            assert c == pytest.approx(h.sum, abs=1e-9)
            by_phase[p] = c
        assert by_phase["lemma2_commit"] > 0
        # Phase laps are contiguous: they account for the bulk of the
        # measured iteration wall time.
        wall = reg.histogram("repro_iteration_seconds", mode="vectorized").sum
        assert 0 < sum(by_phase.values()) <= wall * 1.1 + 1e-3

    def test_metrics_accumulate_across_runs(self, rmat_small):
        reg = MetricsRegistry()
        for _ in range(2):
            run(WeaklyConnectedComponents(), rmat_small,
                mode="nondeterministic", config=EngineConfig(threads=2),
                vectorized="require", metrics=reg)
        hist = reg.histogram("repro_iteration_seconds", mode="vectorized")
        assert hist.count > 0
        assert (reg.counter("repro_iterations_total",
                            mode="vectorized").value == hist.count)

    def test_metrics_rejects_other_modes(self, rmat_small):
        with pytest.raises(ValueError, match="nondeterministic"):
            run(WeaklyConnectedComponents(), rmat_small, mode="sync",
                metrics=MetricsRegistry())

    def test_metrics_rejects_robust_kwargs(self, rmat_small):
        with pytest.raises(ValueError, match="fault-tolerance"):
            run(WeaklyConnectedComponents(), rmat_small,
                mode="nondeterministic", metrics=MetricsRegistry(),
                faults="crash@3")

    def test_profiled_run_bit_identical(self, rmat_small):
        """Attaching telemetry+metrics is pure timing: same bits out."""
        config = EngineConfig(threads=4, seed=1, jitter=0.5)
        bare = run(PageRank(epsilon=1e-3), rmat_small,
                   mode="nondeterministic", config=config,
                   vectorized="require")
        prof = run(PageRank(epsilon=1e-3), rmat_small,
                   mode="nondeterministic", config=config,
                   vectorized="require", telemetry=Telemetry(),
                   metrics=MetricsRegistry())
        assert np.array_equal(np.asarray(bare.state.vertex("rank")),
                              np.asarray(prof.state.vertex("rank")))
        assert bare.conflicts.read_write == prof.conflicts.read_write
        assert bare.conflicts.write_write == prof.conflicts.write_write
        assert (bare.extra["fixpoint_passes"]
                == prof.extra["fixpoint_passes"])


# ---------------------------------------------------------------------------
# Trace embedding: the snapshot record is invisible to every reader
# ---------------------------------------------------------------------------

class TestSnapshotInTrace:
    def _traced_run(self, graph, tmp_path):
        trace = tmp_path / "run.jsonl"
        sink = Telemetry(trace_path=str(trace))
        reg = MetricsRegistry()
        res = run(WeaklyConnectedComponents(), graph,
                  mode="nondeterministic", config=EngineConfig(threads=4),
                  vectorized="require", telemetry=sink, metrics=reg)
        return res, read_trace(str(trace))

    def test_snapshot_record_before_run_end(self, rmat_small, tmp_path):
        res, records = self._traced_run(rmat_small, tmp_path)
        kinds = [r.get("type") for r in records]
        assert "metrics" in kinds
        # Before the terminal record — lint requires nothing after run_end.
        assert kinds.index("metrics") < kinds.index("run_end")
        assert not lint_trace(records)

    def test_readers_pass_snapshot_through(self, rmat_small, tmp_path):
        res, records = self._traced_run(rmat_small, tmp_path)
        stats = stats_from_trace(records)
        assert len(stats) == res.num_iterations
        summary = summarize_trace(records)
        assert summary["iterations"] == res.num_iterations

    def test_snapshot_merges_back(self, rmat_small, tmp_path):
        _, records = self._traced_run(rmat_small, tmp_path)
        snap = next(r for r in records if r.get("type") == "metrics")
        reg = MetricsRegistry()
        reg.merge(snap)
        assert reg.counter("repro_iterations_total",
                           mode="vectorized").value > 0

    def test_buffered_sink_snapshot_via_write_trace(self, rmat_small,
                                                    tmp_path):
        sink = Telemetry()
        reg = MetricsRegistry()
        run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
            config=EngineConfig(threads=2), vectorized="require",
            telemetry=sink, metrics=reg)
        path = tmp_path / "buffered.jsonl"
        write_trace(sink, str(path))
        records = read_trace(str(path))
        assert any(r.get("type") == "metrics" for r in records)
        assert not lint_trace(records)


def test_peak_rss_bytes_is_plausible():
    rss = peak_rss_bytes()
    # A running CPython interpreter holds at least a few MiB and (on
    # any test box) below a TiB.
    assert 2**20 < rss < 2**40


def test_record_iteration_metrics_series_shape():
    reg = MetricsRegistry()
    record_iteration_metrics(
        reg, "testmode", phases={"gather": 0.5, "barrier_wait": 0.25},
        num_active=10, frontier_size=4, read_write=2, write_write=1,
        wall_time_s=0.75)
    assert reg.counter("repro_iterations_total", mode="testmode").value == 1
    assert reg.counter("repro_conflicts_total", mode="testmode",
                       kind="read_write").value == 2
    assert sum(
        reg.counter("repro_phase_seconds_total", mode="testmode",
                    phase=p).value
        for p in ("gather", "barrier_wait")
    ) == pytest.approx(0.75)
    assert reg.gauge("repro_frontier_size", mode="testmode").value == 4
    assert reg.gauge("repro_peak_rss_bytes", mode="testmode").value > 0
