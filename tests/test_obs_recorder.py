"""Flight-recorder (race provenance) and divergence-explainer tests.

Three contracts anchor this file:

1. **Round-trip**: a JSONL provenance trace re-read from disk equals the
   recorder's in-memory records, for every engine mode.
2. **Object ≡ vectorized**: on one schedule the vectorized fast path
   records byte-identical provenance (events, offered/dropped counters,
   reservoir samples) to the object nondeterministic engine — the
   recorder is part of the bit-compatibility surface.
3. **Explainability**: on the rmat-10 PageRank acceptance scenario the
   explainer finds a consistent first divergent event and its forward
   taint covers the first disagreeing rank (the difference-degree
   connection of §V-C).
"""

import json

import numpy as np
import pytest

from repro.algorithms import PageRank, WeaklyConnectedComponents
from repro.analysis import (
    explain_traces,
    first_divergence,
    ranking,
)
from repro.analysis.difference import (
    cross_difference_degree,
    difference_degree,
    identical_prefix_length,
)
from repro.engine import EngineConfig, run
from repro.graph import generators
from repro.obs import RECORD_POLICIES, Recorder, lint_trace, read_trace, summarize_trace

ALL_MODES = [
    "sync",
    "deterministic",
    "chromatic",
    "nondeterministic",
    "pure-async",
    "threads",
]


def record_run(graph, *, mode="nondeterministic", vectorized=False, seed=1,
               threads=4, policy="all", trace_path=None, program=None,
               jitter=None, **rec_kwargs):
    config = (EngineConfig(threads=threads, seed=seed)
              if jitter is None
              else EngineConfig(threads=threads, seed=seed, jitter=jitter))
    rec = Recorder(policy=policy, trace_path=trace_path, **rec_kwargs)
    res = run(program or WeaklyConnectedComponents(), graph, mode=mode,
              vectorized=vectorized, config=config, record=rec)
    return rec, res


class TestRecorderBasics:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown recorder policy"):
            Recorder(policy="everything")

    def test_rejects_bad_reservoir_k(self):
        with pytest.raises(ValueError, match="reservoir_k"):
            Recorder(policy="reservoir", reservoir_k=0)

    @pytest.mark.parametrize("policy", RECORD_POLICIES)
    def test_run_envelope(self, rmat_small, policy):
        rec, res = record_run(rmat_small, policy=policy)
        assert rec.records[0]["type"] == "run_start"
        assert rec.records[0]["mode"] == "nondeterministic"
        assert rec.records[0]["recorder_policy"] == policy
        assert rec.records[-1]["type"] == "run_end"
        assert rec.records[-1]["converged"] == res.converged
        assert rec.records[-1]["provenance_events"] == len(rec.events)
        assert rec.records[-1]["events_offered"] == rec.offered
        # Small graph: the final ranking is embedded for the explainer.
        labels = res.result()
        assert rec.run_summary["ranking"] == [int(v) for v in ranking(labels)]

    def test_offered_counts_all_sampling_outcomes(self, rmat_small):
        rec, _ = record_run(rmat_small, policy="conflicts")
        assert rec.offered == len(rec.events) + rec.dropped

    def test_reset_allows_reuse(self, path8):
        rec, _ = record_run(path8)
        assert rec.records
        rec.reset()
        assert rec.records == [] and rec.events == []
        assert rec.offered == 0 and rec.dropped == 0
        run(WeaklyConnectedComponents(), path8, mode="nondeterministic",
            config=EngineConfig(threads=4, seed=1), record=rec)
        assert rec.records[-1]["type"] == "run_end"

    def test_commits_filters_kind(self, rmat_small):
        rec, _ = record_run(rmat_small, policy="all")
        commits = rec.commits()
        assert commits and all(e["kind"] == "commit" for e in commits)
        assert len(commits) < len(rec.events)  # reads recorded too


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_trace_matches_records(self, mode, rmat_small, tmp_path):
        path = tmp_path / f"{mode}.jsonl"
        rec, res = record_run(rmat_small, mode=mode, policy="all",
                              trace_path=str(path))
        records = read_trace(str(path))
        # JSON round-trip normalizes NumPy scalars; compare via dumps.
        assert [json.loads(json.dumps(r, default=repr)) for r in rec.records] \
            == records
        assert records[0]["mode"] == mode
        assert records[-1]["iterations"] == res.num_iterations
        assert rec.events, mode  # every engine produced provenance
        assert not [i for i in lint_trace(records) if i.severity == "error"]

    def test_export_equals_stream(self, path8, tmp_path):
        streamed = tmp_path / "stream.jsonl"
        exported = tmp_path / "export.jsonl"
        rec, _ = record_run(path8, policy="all", trace_path=str(streamed))
        rec.export(str(exported))
        assert read_trace(str(streamed)) == read_trace(str(exported))

    @pytest.mark.parametrize("mode,kinds", [
        ("nondeterministic", {"commit", "read"}),
        ("sync", {"commit"}),
        ("deterministic", {"write"}),
        ("chromatic", {"write"}),
        ("pure-async", {"commit", "read"}),
        ("threads", {"write"}),
    ])
    def test_event_kinds_per_mode(self, mode, kinds, rmat_small):
        rec, _ = record_run(rmat_small, mode=mode, policy="all")
        assert {e["kind"] for e in rec.events} == kinds


class TestObjectVectorizedEquality:
    """The fast path is bit-compatible down to the provenance stream."""

    @pytest.mark.parametrize("policy", RECORD_POLICIES)
    @pytest.mark.parametrize("program_factory", [
        lambda: PageRank(epsilon=1e-2),
        WeaklyConnectedComponents,
    ])
    def test_records_identical(self, rmat_small, policy, program_factory):
        rec_obj, res_obj = record_run(rmat_small, policy=policy,
                                      program=program_factory())
        rec_vec, res_vec = record_run(rmat_small, policy=policy,
                                      vectorized=True,
                                      program=program_factory())
        assert np.array_equal(res_obj.result(), res_vec.result())
        assert rec_obj.events == rec_vec.events
        assert rec_obj.offered == rec_vec.offered
        assert rec_obj.dropped == rec_vec.dropped

    def test_commits_round_trip_identically(self, rmat_small, tmp_path):
        # Acceptance: the fast path's recorded Lemma-2 commits round-trip
        # through read_trace identically to the object engine's.
        paths = {}
        for label, vectorized in (("obj", False), ("vec", True)):
            paths[label] = str(tmp_path / f"{label}.jsonl")
            record_run(rmat_small, policy="all", vectorized=vectorized,
                       program=PageRank(epsilon=1e-2),
                       trace_path=paths[label])
        commits = {
            label: [r for r in read_trace(p)
                    if r.get("type") == "provenance" and r["kind"] == "commit"]
            for label, p in paths.items()
        }
        assert commits["obj"] == commits["vec"]
        assert commits["obj"]  # non-vacuous

    def test_reservoir_sampling_streams_match(self, rmat_small):
        rec_obj, _ = record_run(rmat_small, policy="reservoir", reservoir_k=3)
        rec_vec, _ = record_run(rmat_small, policy="reservoir", reservoir_k=3,
                                vectorized=True)
        assert rec_obj.events == rec_vec.events
        assert rec_obj.dropped == rec_vec.dropped


class TestPolicies:
    def test_conflicts_drops_same_thread_pairs(self, rmat_small):
        rec_c, _ = record_run(rmat_small, policy="conflicts")
        rec_a, _ = record_run(rmat_small, policy="all")
        assert rec_c.dropped > 0
        assert len(rec_c.events) < len(rec_a.events)
        for ev in rec_c.events:
            if ev["kind"] == "read":
                assert ev["reader_thread"] != ev["writer_thread"]
            elif ev["kind"] == "commit":
                assert any(e["thread"] != ev["writer_thread"]
                           for e in ev["lost"])

    def test_all_keeps_everything(self, rmat_small):
        rec, _ = record_run(rmat_small, policy="all")
        assert rec.dropped == 0
        assert rec.offered == len(rec.events)
        assert any(e.get("rule") == "uncontended" for e in rec.commits())

    def test_reservoir_bounds_per_edge(self, rmat_small):
        k = 2
        rec, _ = record_run(rmat_small, policy="reservoir", reservoir_k=k)
        per_key: dict = {}
        for ev in rec.events:
            per_key[(ev["field"], ev["eid"])] = \
                per_key.get((ev["field"], ev["eid"]), 0) + 1
        assert per_key
        assert max(per_key.values()) <= k
        assert rec.dropped > 0  # a hot edge actually overflowed

    def test_reads_false_suppresses_lemma1_events(self, rmat_small):
        rec, _ = record_run(rmat_small, policy="all", reads=False)
        assert rec.events
        assert not any(e["kind"] == "read" for e in rec.events)


class TestRunnerNormalization:
    def test_record_true_builds_recorder(self, path8):
        res = run(WeaklyConnectedComponents(), path8, mode="nondeterministic",
                  config=EngineConfig(threads=4, seed=1), record=True)
        assert res.converged

    def test_record_path_streams_trace(self, path8, tmp_path):
        path = tmp_path / "auto.jsonl"
        res = run(WeaklyConnectedComponents(), path8, mode="nondeterministic",
                  config=EngineConfig(threads=4, seed=1), record=str(path))
        assert res.converged
        records = read_trace(str(path))
        assert records[0]["type"] == "run_start"
        assert records[-1]["type"] == "run_end"

    def test_bad_record_value_rejected(self, path8):
        with pytest.raises(ValueError, match="not understood"):
            run(WeaklyConnectedComponents(), path8, mode="nondeterministic",
                record=42)


class TestLintSummarize:
    def test_summarize_recorded_run(self, rmat_small, tmp_path):
        path = tmp_path / "t.jsonl"
        rec, res = record_run(rmat_small, policy="conflicts",
                              trace_path=str(path))
        summary = summarize_trace(read_trace(str(path)))
        assert summary["mode"] == "nondeterministic"
        assert summary["program"] == "WeaklyConnectedComponents"
        assert summary["provenance_events"] == len(rec.events)
        assert summary["events_offered"] == rec.offered
        assert summary["converged"] == res.converged
        assert summary["has_ranking"] is True
        assert not summary["truncated"]

    def test_lint_flags_winner_in_lost_list(self):
        records = [
            {"type": "run_start", "mode": "nondeterministic"},
            {"type": "provenance", "kind": "commit", "iteration": 0,
             "field": "value", "eid": 0, "writer": 3, "writer_thread": 0,
             "value": 1.0, "rule": "lemma2",
             "lost": [{"vid": 3, "thread": 1, "value": 2.0,
                       "order": "concurrent"}]},
            {"type": "run_end"},
        ]
        issues = lint_trace(records)
        assert any("lost" in i.message and i.severity == "error"
                   for i in issues)

    def test_lint_flags_decreasing_iteration(self):
        records = [
            {"type": "run_start"},
            {"type": "provenance", "kind": "write", "iteration": 2,
             "field": "value", "eid": 0, "writer": 0, "writer_thread": 0,
             "value": 1.0, "rule": "threads", "order": "unobserved"},
            {"type": "provenance", "kind": "write", "iteration": 1,
             "field": "value", "eid": 1, "writer": 1, "writer_thread": 0,
             "value": 1.0, "rule": "threads", "order": "unobserved"},
            {"type": "run_end"},
        ]
        assert any(i.severity == "error" for i in lint_trace(records))

    def test_lint_clean_on_real_trace(self, rmat_small):
        rec, _ = record_run(rmat_small, policy="all")
        assert lint_trace(rec.records) == []


class TestExplainer:
    def test_identical_seeds_do_not_diverge(self, rmat_small):
        recs = [record_run(rmat_small, policy="conflicts", seed=1,
                           program=PageRank(epsilon=1e-2), jitter=0.5)[0]
                for _ in range(2)]
        report = explain_traces(recs[0].records, recs[1].records)
        assert report.first is None
        assert report.degree == rmat_small.num_vertices  # identical rankings

    def test_rmat10_pagerank_acceptance(self, tmp_path):
        # Acceptance: two seeded rmat-10 PageRank NE runs; the explainer
        # identifies a consistent first divergent event.
        graph = generators.rmat(10, 6.0, seed=7)
        paths = []
        for seed in (0, 1):
            path = tmp_path / f"s{seed}.jsonl"
            record_run(graph, policy="conflicts", seed=seed, threads=8,
                       jitter=0.5, vectorized=True,
                       program=PageRank(epsilon=1e-3), trace_path=str(path))
            paths.append(str(path))
        records = [read_trace(p) for p in paths]
        report = explain_traces(records[0], records[1], graph=graph)
        assert report.first is not None
        # Consistency: swapping the traces finds the same racy access.
        mirrored = explain_traces(records[1], records[0], graph=graph)
        locus = lambda d: (d.iteration, d.field, d.eid, d.event_kind)
        assert locus(report.first) == locus(mirrored.first)
        # Everything before the divergence agreed, in both directions.
        assert report.first.agreed_events == mirrored.first.agreed_events
        # The embedded rankings give the §V-C difference degree, and the
        # first disagreeing rank is inside the forward taint of the race.
        assert report.degree is not None
        assert report.degree < graph.num_vertices
        assert report.degree == difference_degree(
            np.asarray(report.ranking_a), np.asarray(report.ranking_b))
        assert report.divergent_rank_vertices
        assert report.explained is True
        text = report.render()
        assert "explained by the first race" in text
        assert f"difference degree {report.degree}" in text

    def test_first_divergence_reports_missing_event(self):
        ev = {"type": "provenance", "kind": "commit", "iteration": 0,
              "field": "value", "eid": 5, "writer": 1, "writer_thread": 0,
              "value": 1.0, "rule": "lemma2", "lost": []}
        div = first_divergence([ev], [])
        assert div.kind == "only-in-a"
        assert div.event_a == ev and div.event_b is None
        assert first_divergence([], [ev]).kind == "only-in-b"

    def test_mismatched_workload_warns(self, path8):
        rec_a, _ = record_run(path8, mode="nondeterministic")
        rec_b, _ = record_run(path8, mode="sync")
        report = explain_traces(rec_a.records, rec_b.records)
        assert any("mode" in w for w in report.warnings)


class TestDifferenceDegreesFromTraces:
    """§V-C metrics driven from real recorded traces (satellite).

    The rankings come from the ``run_end`` records of actual recorder
    runs — the same data path the explainer uses — and must agree with
    the metrics computed directly from the in-memory results.
    """

    @pytest.fixture(scope="class")
    def trace_groups(self):
        graph = generators.rmat(8, 6.0, seed=3)
        groups, results = {}, {}
        for threads in (4, 8):
            rows = [record_run(graph, policy="conflicts", threads=threads,
                               seed=s, jitter=0.5,
                               program=PageRank(epsilon=1e-3))
                    for s in (0, 1, 2)]
            groups[threads] = [
                np.asarray(rec.run_summary["ranking"], dtype=np.int64)
                for rec, _ in rows
            ]
            results[threads] = [res.result() for _, res in rows]
        return graph, groups, results

    def test_embedded_rankings_match_results(self, trace_groups):
        _, groups, results = trace_groups
        for threads in groups:
            for embedded, scores in zip(groups[threads], results[threads]):
                assert np.array_equal(embedded, ranking(scores))

    def test_cross_difference_degree_from_traces(self, trace_groups):
        graph, groups, _ = trace_groups
        degree = cross_difference_degree(groups[4], groups[8])
        assert 0 <= degree <= graph.num_vertices
        # Hand-rolled over all ordered pairs — the Table III definition.
        expected = np.mean([
            difference_degree(a, b) for a in groups[4] for b in groups[8]
        ])
        assert degree == pytest.approx(float(expected))

    def test_identical_prefix_from_traces(self, trace_groups):
        graph, groups, _ = trace_groups
        everything = groups[4] + groups[8]
        prefix = identical_prefix_length(everything)
        # The paper's usability claim: the top of the ranking is stable.
        assert 0 < prefix <= graph.num_vertices
        head = {tuple(r[:prefix]) for r in everything}
        assert len(head) == 1  # all runs agree on the prefix...
        if prefix < graph.num_vertices:
            at = {int(r[prefix]) for r in everything}
            assert len(at) > 1  # ...and genuinely disagree right after

    def test_prefix_bounded_by_cross_degree(self, trace_groups):
        _, groups, _ = trace_groups
        everything = groups[4] + groups[8]
        prefix = identical_prefix_length(everything)
        min_pair = min(
            difference_degree(a, b) for a in groups[4] for b in groups[8]
        )
        assert prefix <= min_pair


class TestTraceCLI:
    @pytest.fixture()
    def trace_pair(self, tmp_path):
        from repro.cli import main

        paths = []
        for seed in (0, 1):
            path = str(tmp_path / f"cli_s{seed}.jsonl")
            code = main(["run", "PageRank", "--scale", "8",
                         "--threads", "8", "--run-seed", str(seed),
                         "--record", path])
            assert code == 0
            paths.append(path)
        return paths

    def test_summarize(self, trace_pair, capsys):
        from repro.cli import main

        assert main(["trace", "summarize", trace_pair[0]]) == 0
        out = capsys.readouterr().out
        assert "nondeterministic" in out
        assert "provenance_events" in out

    def test_lint(self, trace_pair, capsys):
        from repro.cli import main

        assert main(["trace", "lint", trace_pair[0]]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_diff_and_explain_flag_divergence(self, trace_pair, capsys):
        from repro.cli import main

        code = main(["trace", "diff", *trace_pair])
        out = capsys.readouterr().out
        assert code == 3 and "then:" in out
        code = main(["trace", "explain", *trace_pair])
        out = capsys.readouterr().out
        assert code == 3
        assert "Divergence explainer" in out
        assert "forward taint" in out

    def test_diff_identical_trace_exits_zero(self, trace_pair, capsys):
        from repro.cli import main

        assert main(["trace", "diff", trace_pair[0], trace_pair[0]]) == 0
        assert "agree" in capsys.readouterr().out
