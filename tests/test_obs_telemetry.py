"""Telemetry round-trip and primitives tests.

The central property: for every engine mode, a JSONL trace re-read from
disk reconstructs ``RunResult.iterations`` exactly — the "tables and
telemetry agree by construction" contract the experiment drivers rely
on.
"""

import json

import pytest

from repro.algorithms import WeaklyConnectedComponents
from repro.engine import EngineConfig, run
from repro.obs import (
    IterationSpan,
    Telemetry,
    read_trace,
    stats_from_trace,
    write_trace,
)

ALL_MODES = [
    "sync",
    "deterministic",
    "chromatic",
    "nondeterministic",
    "pure-async",
    "threads",
]


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_trace_matches_result(self, mode, rmat_small, tmp_path):
        path = tmp_path / f"{mode}.jsonl"
        sink = Telemetry(trace_path=str(path))
        res = run(WeaklyConnectedComponents(), rmat_small, mode=mode,
                  config=EngineConfig(threads=4, seed=1), telemetry=sink)

        records = read_trace(str(path))
        assert stats_from_trace(records) == res.iterations
        assert sink.iteration_stats() == res.iterations

        assert records[0]["type"] == "run_start"
        assert records[0]["mode"] == mode
        assert records[0]["threads"] == 4
        assert records[0]["program"] == "WeaklyConnectedComponents"
        assert records[-1]["type"] == "run_end"
        assert records[-1]["converged"] == res.converged
        assert records[-1]["iterations"] == res.num_iterations
        assert records[-1]["total_updates"] == res.total_updates

    def test_vectorized_trace_matches_result(self, rmat_small, tmp_path):
        path = tmp_path / "vec.jsonl"
        sink = Telemetry(trace_path=str(path))
        res = run(WeaklyConnectedComponents(), rmat_small,
                  mode="nondeterministic", vectorized=True,
                  config=EngineConfig(threads=4, seed=1), telemetry=sink)
        records = read_trace(str(path))
        assert stats_from_trace(records) == res.iterations
        assert records[0]["mode"] == "nondeterministic"
        # The fast path annotates its fixpoint sweeps on every span.
        spans = [r for r in records if r["type"] == "iteration"]
        assert all(r["extra"]["fixpoint_passes"] >= 1 for r in spans)

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_conflict_deltas_sum_to_run_totals(self, rmat_small, vectorized):
        sink = Telemetry()
        res = run(WeaklyConnectedComponents(), rmat_small,
                  mode="nondeterministic", vectorized=vectorized,
                  config=EngineConfig(threads=4, seed=1), telemetry=sink)
        assert sum(s.read_write for s in sink.spans) == res.conflicts.read_write
        assert sum(s.write_write for s in sink.spans) == res.conflicts.write_write

    def test_wall_time_and_frontier_recorded(self, rmat_small):
        sink = Telemetry()
        res = run(WeaklyConnectedComponents(), rmat_small, mode="deterministic",
                  telemetry=sink)
        assert res.converged
        assert all(s.wall_time_s >= 0.0 for s in sink.spans)
        assert sink.spans[-1].frontier_size == 0  # converged: empty S_{n+1}


class TestRunnerIntegration:
    def test_fallback_event_recorded(self, rmat_small):
        sink = Telemetry()
        res = run(WeaklyConnectedComponents(), rmat_small,
                  mode="nondeterministic", vectorized=True,
                  config=EngineConfig(threads=4, fp_noise=True), telemetry=sink)
        assert res.converged
        events = [r for r in sink.records
                  if r.get("type") == "event" and r["name"] == "vectorized_fallback"]
        assert len(events) == 1
        assert any("fp_noise" in reason for reason in events[0]["reasons"])

    def test_empty_string_vectorized_is_false(self, rmat_small):
        # Falsy pass-through from CLI/env plumbing; valid for *every* mode.
        res = run(WeaklyConnectedComponents(), rmat_small, mode="sync",
                  vectorized="")
        assert res.converged

    def test_bad_vectorized_string_rejected(self, rmat_small):
        with pytest.raises(ValueError, match="not understood"):
            run(WeaklyConnectedComponents(), rmat_small,
                mode="nondeterministic", vectorized="yes")

    def test_require_raises_with_reasons(self, rmat_small):
        with pytest.raises(ValueError, match="fp_noise"):
            run(WeaklyConnectedComponents(), rmat_small,
                mode="nondeterministic", vectorized="require",
                config=EngineConfig(fp_noise=True))


class TestPrimitives:
    def test_counter_and_gauge(self):
        sink = Telemetry()
        sink.counter("x").inc()
        sink.counter("x").inc(2)
        assert sink.counter("x").value == 3
        sink.gauge("g").set(1.5)
        assert sink.gauge("g").value == 1.5

    def test_end_run_dumps_counters_and_gauges(self):
        sink = Telemetry()
        sink.begin_run(mode="manual")
        sink.counter("fallbacks").inc(5)
        sink.gauge("load").set(0.25)
        sink.end_run()
        assert sink.run_summary["counters"] == {"fallbacks": 5}
        assert sink.run_summary["gauges"] == {"load": 0.25}

    def test_on_iteration_callback(self, path8):
        seen = []
        sink = Telemetry(on_iteration=seen.append)
        run(WeaklyConnectedComponents(), path8, mode="deterministic",
            telemetry=sink)
        assert seen == sink.spans
        assert [s.iteration for s in seen] == list(range(len(seen)))

    def test_export_equals_stream(self, path8, tmp_path):
        streamed = tmp_path / "stream.jsonl"
        exported = tmp_path / "export.jsonl"
        sink = Telemetry(trace_path=str(streamed))
        run(WeaklyConnectedComponents(), path8, mode="sync", telemetry=sink)
        sink.export(str(exported))
        assert read_trace(str(streamed)) == read_trace(str(exported))

    def test_write_trace_helper(self, path8, tmp_path):
        sink = Telemetry()  # buffered only, no streaming path
        res = run(WeaklyConnectedComponents(), path8, mode="sync",
                  telemetry=sink)
        path = tmp_path / "posthoc.jsonl"
        write_trace(sink, str(path))
        assert stats_from_trace(read_trace(str(path))) == res.iterations

    def test_reset_allows_reuse(self, path8):
        sink = Telemetry()
        run(WeaklyConnectedComponents(), path8, mode="sync", telemetry=sink)
        first = len(sink.spans)
        assert first > 0
        sink.reset()
        assert sink.spans == [] and sink.records == []
        assert sink.run_summary is None
        res = run(WeaklyConnectedComponents(), path8, mode="sync",
                  telemetry=sink)
        assert sink.iteration_stats() == res.iterations

    def test_summary_table(self, path8):
        sink = Telemetry()
        run(WeaklyConnectedComponents(), path8, mode="deterministic",
            telemetry=sink)
        text = sink.summary()
        assert "mode=deterministic" in text
        assert "iter" in text and "frontier" in text
        assert "total" in text

    def test_span_from_record_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="not an iteration record"):
            IterationSpan.from_record({"type": "run_start"})

    def test_read_trace_marks_truncated_final_line(self, tmp_path):
        # A killed run leaves a torn final line; the reader reports it
        # as a marker record rather than refusing the whole trace.
        path = tmp_path / "killed.jsonl"
        path.write_text(
            json.dumps({"type": "run_start"}) + "\n"
            + json.dumps({"type": "iteration", "iteration": 0}) + "\n"
            + '{"type": "iteration", "itera'
        )
        records = read_trace(str(path))
        assert records[-1] == {"type": "truncated", "line": 3}
        assert [r["type"] for r in records] == ["run_start", "iteration", "truncated"]

    def test_read_trace_rejects_mid_file_corruption(self, tmp_path):
        # Corruption is a bad line with valid lines after it: still fatal.
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "run_start"}) + "\n{oops\n"
            + json.dumps({"type": "run_end"}) + "\n"
        )
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(str(path))

    def test_callback_error_recorded_not_raised(self, path8):
        def boom(span):
            if span.iteration == 1:
                raise RuntimeError("user callback bug")

        sink = Telemetry(on_iteration=boom)
        res = run(WeaklyConnectedComponents(), path8, mode="deterministic",
                  telemetry=sink)
        assert res.converged  # the engine finished despite the callback
        errors = [r for r in sink.records
                  if r.get("type") == "event" and r.get("name") == "callback_error"]
        assert len(errors) == 1
        assert errors[0]["iteration"] == 1
        assert "user callback bug" in errors[0]["error"]
