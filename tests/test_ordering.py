"""Tests for the partial orders of Definitions 1-3 and the visibility rule."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import Order, TaskSlot, classify, classify_timestamps, visible


class TestClassify:
    def test_same_task(self):
        assert classify(3, 0, 3, 0, d=2) is Order.SAME

    def test_same_thread_program_order(self):
        assert classify(1, 0, 4, 0, d=2) is Order.PRECEDES
        assert classify(4, 0, 1, 0, d=2) is Order.FOLLOWS

    def test_same_thread_ignores_delay(self):
        # d never separates same-thread tasks: program order always wins.
        assert classify(1, 0, 2, 0, d=100) is Order.PRECEDES

    def test_cross_thread_precedes_when_gap_at_least_d(self):
        assert classify(0, 0, 2, 1, d=2) is Order.PRECEDES

    def test_cross_thread_follows(self):
        assert classify(5, 0, 1, 1, d=2) is Order.FOLLOWS

    def test_cross_thread_concurrent_within_window(self):
        assert classify(3, 0, 4, 1, d=2) is Order.CONCURRENT
        assert classify(3, 0, 3, 1, d=2) is Order.CONCURRENT
        assert classify(4, 0, 3, 1, d=2) is Order.CONCURRENT

    def test_boundary_exactly_d(self):
        # π(u) − π(v) == d ⟹ ≺ (Definition 1 uses >=).
        assert classify(0, 0, 2, 1, d=2) is Order.PRECEDES
        assert classify(2, 1, 0, 0, d=2) is Order.FOLLOWS

    def test_invalid_delay(self):
        with pytest.raises(ValueError, match="d must be >= 1"):
            classify(0, 0, 1, 1, d=0)

    @given(
        st.integers(0, 30),
        st.integers(0, 3),
        st.integers(0, 30),
        st.integers(0, 3),
        st.integers(1, 8),
    )
    def test_trichotomy(self, pv, tv, pu, tu, d):
        """Exactly one of SAME/≺/≻/∥ holds, and ≺/≻ are converses."""
        rel = classify(pv, tv, pu, tu, d)
        inverse = classify(pu, tu, pv, tv, d)
        if rel is Order.SAME:
            assert (pv, tv) == (pu, tu) or (tv == tu and pv == pu)
            assert inverse is Order.SAME
        elif rel is Order.PRECEDES:
            assert inverse is Order.FOLLOWS
        elif rel is Order.FOLLOWS:
            assert inverse is Order.PRECEDES
        else:
            assert inverse is Order.CONCURRENT


class TestClassifyTimestamps:
    def slot(self, thread, pi, time=None):
        return TaskSlot(vid=0, thread=thread, pi=pi, time=float(pi if time is None else time))

    def test_pure_slots_match_classify(self):
        for pv in range(5):
            for pu in range(5):
                for tv in range(2):
                    for tu in range(2):
                        a = self.slot(tv, pv)
                        b = self.slot(tu, pu)
                        assert classify_timestamps(a, b, 2.0) is classify(
                            pv, tv, pu, tu, 2
                        )

    def test_jitter_shifts_window(self):
        a = TaskSlot(vid=0, thread=0, pi=0, time=0.0)
        b = TaskSlot(vid=1, thread=1, pi=2, time=2.4)
        assert classify_timestamps(a, b, 2.0) is Order.PRECEDES
        b_close = TaskSlot(vid=1, thread=1, pi=2, time=1.9)
        assert classify_timestamps(a, b_close, 2.0) is Order.CONCURRENT


class TestVisible:
    def test_same_thread_visibility_is_program_order(self):
        w = TaskSlot(vid=0, thread=0, pi=1, time=1.0)
        r = TaskSlot(vid=1, thread=0, pi=2, time=2.0)
        assert visible(w, r, d=5.0)
        assert not visible(r, w, d=5.0)

    def test_cross_thread_requires_delay(self):
        w = TaskSlot(vid=0, thread=0, pi=0, time=0.0)
        r_near = TaskSlot(vid=1, thread=1, pi=1, time=1.0)
        r_far = TaskSlot(vid=1, thread=1, pi=3, time=3.0)
        assert not visible(w, r_near, d=2.0)
        assert visible(w, r_far, d=2.0)

    @given(
        st.integers(0, 20),
        st.integers(0, 3),
        st.integers(0, 20),
        st.integers(0, 3),
        st.integers(1, 6),
    )
    def test_visible_iff_precedes(self, pw, tw, pr, tr, d):
        w = TaskSlot(vid=0, thread=tw, pi=pw, time=float(pw))
        r = TaskSlot(vid=1, thread=tr, pi=pr, time=float(pr))
        if (pw, tw) == (pr, tr) or (tw == tr and pw == pr):
            return  # same slot: not a meaningful writer/reader pair
        expected = classify(pw, tw, pr, tr, d) is Order.PRECEDES
        assert visible(w, r, float(d)) == expected
