"""Out-of-core sharded execution: container v2, PSW shards, and the
interval-sliced nondeterministic runner.

Three layers are pinned here:

* the RPROGRF2 container — page-aligned blocks, zero-copy ``np.memmap``
  views, torn-header rejection;
* the :class:`~repro.storage.shards.ShardStore` PSW layout — interval
  coverage, source-sort, and the single-writer slot ownership that makes
  the §II scope rule compose across intervals;
* the :class:`~repro.engine.nondet_outofcore.OutOfCoreNondetRunner` —
  bit-identical to the in-memory vectorized engine (which is itself
  bit-identical to the object engine) for every kernel, in both the
  single-process and the persistent-pool process backends, including
  fix-point pass counts, conflict accounting, and recorder provenance.

The ``outofcore`` marker selects the bounded-RAM scale test the CI
out-of-core job runs (`pytest -m outofcore`).
"""

import mmap as _mmap
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.algorithms import PageRank, WeaklyConnectedComponents
from repro.engine import EngineConfig, OutOfCoreNondetRunner, run
from repro.graph import generators
from repro.obs import Recorder
from repro.storage import ShardStore
from repro.storage.binfmt import MAGIC2, load_graph, save_graph

from .test_nondet_vectorized import ALGORITHMS, assert_bit_identical


# ---------------------------------------------------------------------------
# container v2: mmap views and torn headers
# ---------------------------------------------------------------------------

class TestContainerV2:
    def test_mmap_views_are_zero_copy_and_page_aligned(self, tmp_path, rmat_small):
        path = tmp_path / "g.rpro"
        rng = np.random.default_rng(0)
        vx = rng.random(rmat_small.num_vertices)
        ew = rng.random(rmat_small.num_edges)
        save_graph(rmat_small, path, vertex_arrays={"vx": vx},
                   edge_arrays={"ew": ew})
        g1, va1, ea1 = load_graph(path)
        g2, va2, ea2 = load_graph(path, mmap=True)
        assert g1 == g2 == rmat_small
        assert np.array_equal(va1["vx"], va2["vx"])
        assert np.array_equal(ea1["ew"], ea2["ew"])
        for arr in (va2["vx"], ea2["ew"]):
            assert isinstance(arr, np.memmap)
            assert not arr.flags.writeable
            assert arr.offset % _mmap.ALLOCATIONGRANULARITY == 0
        assert not isinstance(va1["vx"], np.memmap)
        va1["vx"][0] = -1.0  # plain load stays privately writable

    def test_v1_still_readable_but_not_mappable(self, tmp_path, rmat_small):
        path = tmp_path / "g.rpro"
        save_graph(rmat_small, path, version=1)
        back, _, _ = load_graph(path)
        assert back == rmat_small
        with pytest.raises(ValueError, match="mmap=True requires a v2"):
            load_graph(path, mmap=True)

    def test_torn_fixed_header_rejected(self, tmp_path, rmat_small):
        path = tmp_path / "g.rpro"
        save_graph(rmat_small, path)
        data = path.read_bytes()
        path.write_bytes(data[:len(MAGIC2) + 4])
        with pytest.raises(ValueError, match="torn header"):
            load_graph(path)

    def test_torn_toc_rejected(self, tmp_path, rmat_small):
        path = tmp_path / "g.rpro"
        save_graph(rmat_small, path)
        data = path.read_bytes()
        path.write_bytes(data[:len(MAGIC2) + 24 + 3])
        with pytest.raises(ValueError, match="torn header"):
            load_graph(path)

    def test_byte_poke_in_payload_detected(self, tmp_path, rmat_small):
        path = tmp_path / "g.rpro"
        save_graph(rmat_small, path)
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError):
            load_graph(path)


# ---------------------------------------------------------------------------
# PSW shard-store invariants (property tests over rmat scales)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scale,num_intervals",
                         [(8, 4), (11, 7), (14, 16)])
def test_psw_invariants_on_rmat(tmp_path, scale, num_intervals):
    """Interval coverage, source-sort, and single-writer ownership,
    re-derived from the canonical topology independently of validate()."""
    g = generators.rmat(scale, 8.0, seed=scale)
    store = ShardStore.build(g, tmp_path / "g.shards", num_intervals)
    store.validate()

    src = np.asarray(store.canon_src)
    dst = np.asarray(store.canon_dst)
    eid = np.asarray(store.psw_eid)
    n, m, k = store.num_vertices, store.num_edges, store.num_intervals

    # Intervals partition the vertex set.
    bounds = [store.interval(j) for j in range(k)]
    assert bounds[0][0] == 0 and bounds[-1][1] == n
    for (a, b), (c, d) in zip(bounds, bounds[1:]):
        assert b == c

    interval_of = np.searchsorted(store.bounds, np.arange(n), side="right") - 1
    slot_owner_dst = np.full(m, -1)   # interval whose shard holds the slot
    slot_owner_src = np.full(m, -1)   # interval whose window holds the slot
    for j in range(k):
        a, b = int(store.shard_offsets[j]), int(store.shard_offsets[j + 1])
        assert slot_owner_dst[a:b].max(initial=-1) == -1, "shard overlap"
        slot_owner_dst[a:b] = j
        # Source-sorted within the shard, canonical id ascending overall.
        assert np.all(np.diff(np.asarray(store.psw_src[a:b])) >= 0)
        for t in range(k):
            wa, wb = int(store.window_index[j, t]), int(store.window_index[j, t + 1])
            assert slot_owner_src[wa:wb].max(initial=-1) == -1, "window overlap"
            slot_owner_src[wa:wb] = t
    # Every slot has exactly one dst-side and one src-side owner, and they
    # are the endpoint intervals — the cross-interval scope rule.
    assert np.all(slot_owner_dst >= 0) and np.all(slot_owner_src >= 0)
    assert np.array_equal(slot_owner_dst, interval_of[dst[eid]])
    assert np.array_equal(slot_owner_src, interval_of[src[eid]])

    # Coverage: interval k's ranges are exactly the slots incident to it.
    for j in range(k):
        covered = np.zeros(m, dtype=bool)
        for (a, b) in store.interval_ranges(j):
            assert not covered[a:b].any(), "ranges overlap"
            covered[a:b] = True
        incident = (slot_owner_dst == j) | (slot_owner_src == j)
        assert np.array_equal(covered, incident)


def test_store_rejects_corrupted_layout(tmp_path, rmat_small):
    store = ShardStore.build(rmat_small, tmp_path / "g.shards", 4)
    store.validate()
    with pytest.raises(ValueError):
        ShardStore.build(rmat_small, tmp_path / "bad.shards", 0)


def test_graph_view_matches_source_graph(tmp_path, rmat_small):
    store = ShardStore.build(rmat_small, tmp_path / "g.shards", 4)
    view = store.graph_view()
    assert view.num_vertices == rmat_small.num_vertices
    assert view.num_edges == rmat_small.num_edges
    assert np.array_equal(view.edge_src, rmat_small.edge_src)
    assert np.array_equal(view.edge_dst, rmat_small.edge_dst)
    assert np.array_equal(view.out_degrees(), rmat_small.out_degrees())


# ---------------------------------------------------------------------------
# bit-identity: out-of-core == in-memory vectorized == object engine
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def ooc_graph():
    return generators.rmat(6, 8.0, seed=3)


@pytest.fixture
def ooc_store(ooc_graph, tmp_path):
    store = ShardStore.build(ooc_graph, tmp_path / "g.shards", 4)
    yield store
    runner = store.nondet_runner()
    runner.close()


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@pytest.mark.parametrize("seed", [0, 1])
def test_out_of_core_bit_identical(ooc_graph, ooc_store, algo, seed):
    config = EngineConfig(threads=4, seed=seed, jitter=0.5)
    vec = run(ALGORITHMS[algo](), ooc_graph, mode="nondeterministic",
              config=config, vectorized="require")
    ooc = run(ALGORITHMS[algo](), ooc_store, mode="nondeterministic",
              config=config)
    assert ooc.extra.get("out_of_core") is True
    assert ooc.extra.get("vectorized") is True
    assert ooc.extra["num_intervals"] == 4
    assert ooc.extra["io"]["bytes_read"] > 0
    assert_bit_identical(vec, ooc)
    assert ooc.extra["fixpoint_passes"] == vec.extra["fixpoint_passes"]


def test_out_of_core_zero_jitter_single_interval(ooc_graph, tmp_path):
    """K=1 degenerates to the in-memory schedule exactly."""
    store = ShardStore.build(ooc_graph, tmp_path / "one.shards", 1)
    config = EngineConfig(threads=3, seed=0)
    vec = run(WeaklyConnectedComponents(), ooc_graph, mode="nondeterministic",
              config=config, vectorized="require")
    ooc = run(WeaklyConnectedComponents(), store, mode="nondeterministic",
              config=config)
    assert_bit_identical(vec, ooc)
    store.nondet_runner().close()


def test_recorder_provenance_identical(ooc_graph, ooc_store):
    config = EngineConfig(threads=3, seed=0, jitter=0.5)
    rec_vec, rec_ooc = Recorder(), Recorder()
    vec = run(PageRank(epsilon=1e-3), ooc_graph, mode="nondeterministic",
              config=config, vectorized="require", record=rec_vec)
    ooc = run(PageRank(epsilon=1e-3), ooc_store, mode="nondeterministic",
              config=config, record=rec_ooc)
    assert_bit_identical(vec, ooc)
    assert len(rec_vec.events) > 0
    assert rec_vec.events == rec_ooc.events


def test_out_of_core_rejects_other_modes(ooc_store):
    with pytest.raises(ValueError, match="nondeterministic"):
        run(WeaklyConnectedComponents(), ooc_store, mode="deterministic")


def test_out_of_core_rejects_unknown_backend(ooc_store):
    with pytest.raises(ValueError, match="backend"):
        run(WeaklyConnectedComponents(), ooc_store, mode="nondeterministic",
            config=EngineConfig(threads=2, seed=0), backend="threads")


# ---------------------------------------------------------------------------
# process backend: interval dispatch + persistent pool
# ---------------------------------------------------------------------------

def test_process_backend_bit_identical_and_pool_reused(ooc_graph, ooc_store):
    config = EngineConfig(threads=4, seed=0, jitter=0.5)
    vec = run(PageRank(epsilon=1e-3), ooc_graph, mode="nondeterministic",
              config=config, vectorized="require")
    first = run(PageRank(epsilon=1e-3), ooc_store, mode="nondeterministic",
                config=config, backend="process")
    second = run(PageRank(epsilon=1e-3), ooc_store, mode="nondeterministic",
                 config=config, backend="process")
    assert first.extra["backend"] == "process"
    assert first.extra["pool_reused"] is False
    assert second.extra["pool_reused"] is True
    assert first.extra["workers"] == min(4, 4)
    assert_bit_identical(vec, first)
    assert_bit_identical(vec, second)
    assert first.extra["fixpoint_passes"] == vec.extra["fixpoint_passes"]


def test_process_backend_recorder_identical(ooc_graph, ooc_store):
    config = EngineConfig(threads=2, seed=1, jitter=0.5)
    rec_vec, rec_proc = Recorder(), Recorder()
    vec = run(WeaklyConnectedComponents(), ooc_graph, mode="nondeterministic",
              config=config, vectorized="require", record=rec_vec)
    proc = run(WeaklyConnectedComponents(), ooc_store, mode="nondeterministic",
               config=config, backend="process", record=rec_proc)
    assert_bit_identical(vec, proc)
    assert rec_vec.events == rec_proc.events


def test_pool_torn_down_with_runner(ooc_graph, tmp_path):
    import glob as _glob

    store = ShardStore.build(ooc_graph, tmp_path / "g.shards", 4)
    config = EngineConfig(threads=2, seed=0)
    run(WeaklyConnectedComponents(), store, mode="nondeterministic",
        config=config, backend="process")
    store.nondet_runner().close()
    assert _glob.glob("/dev/shm/repro-pool-*") == []


# ---------------------------------------------------------------------------
# robustness: checkpoints round-trip interval state
# ---------------------------------------------------------------------------

def test_checkpoint_resume_roundtrip(ooc_graph, ooc_store, tmp_path):
    """A checkpoint cut mid-run out-of-core resumes — out-of-core or
    in-memory — to the exact uninterrupted trajectory."""
    from repro.robust import DegradationPolicy

    ck = str(tmp_path / "ooc.ckpt")
    config = EngineConfig(threads=2, seed=0, jitter=0.5)
    with pytest.raises(Exception):
        run(PageRank(epsilon=1e-3), ooc_store, mode="nondeterministic",
            config=config, faults="crash@2", checkpoint=ck,
            policy=DegradationPolicy(max_restarts=0))
    clean = run(PageRank(epsilon=1e-3), ooc_graph, mode="nondeterministic",
                config=config, vectorized="require")
    for resume_graph in (ooc_store, ooc_graph):
        resumed = run(PageRank(epsilon=1e-3), resume_graph,
                      mode="nondeterministic", resume_from=ck)
        assert resumed.converged
        assert resumed.num_iterations == clean.num_iterations
        for f in clean.state.vertex_field_names:
            assert np.array_equal(resumed.state.vertex(f), clean.state.vertex(f))
        for f in clean.state.edge_field_names:
            assert np.array_equal(resumed.state.edge(f), clean.state.edge(f))


def test_torn_write_fault_parity(ooc_graph, ooc_store):
    """Fault injection mutates the interval-sliced state identically to
    the in-memory engine — the supervisor's writes flush to scratch."""
    from repro.robust import supervised_run

    config = EngineConfig(threads=2, seed=3, jitter=0.25)
    solo = supervised_run(WeaklyConnectedComponents(), ooc_graph,
                          mode="nondeterministic", config=config,
                          faults="torn@1;delay@2:x3", vectorized="require")
    ooc = supervised_run(WeaklyConnectedComponents(), ooc_store,
                         mode="nondeterministic", config=config,
                         faults="torn@1;delay@2:x3")
    assert_bit_identical(solo, ooc)


# ---------------------------------------------------------------------------
# bounded RAM at scale (CI out-of-core job)
# ---------------------------------------------------------------------------

_RLIMIT_CHILD = textwrap.dedent("""
    import resource, sys
    import numpy as np
    from repro.engine import EngineConfig, run
    from repro.storage import ShardStore
    from repro.algorithms import WeaklyConnectedComponents
    from repro.graph import DiGraph

    store_path, mode = sys.argv[1], sys.argv[2]
    store = ShardStore.open(store_path)
    # Cap the address space at the current footprint plus a headroom
    # that the interval-sliced runner fits in but a full in-memory
    # materialization (topology + per-slot scratch arrays) cannot.
    with open("/proc/self/statm") as fh:
        vm_pages = int(fh.read().split()[0])
    base = vm_pages * resource.getpagesize()
    headroom = int(sys.argv[3])
    resource.setrlimit(resource.RLIMIT_AS, (base + headroom, resource.RLIM_INFINITY))
    config = EngineConfig(threads=4, seed=0, max_iterations=3)
    if mode == "in-memory":
        src = np.array(store.canon_src)       # materialize topology
        dst = np.array(store.canon_dst)
        g = DiGraph(store.num_vertices, src, dst)
        run(WeaklyConnectedComponents(), g, mode="nondeterministic",
            config=config, vectorized="require")
    else:
        res = run(WeaklyConnectedComponents(), store, mode="nondeterministic",
                  config=config)
        assert res.extra["out_of_core"] is True
    print("OK", mode)
""")


@pytest.mark.outofcore
def test_scale16_wcc_bounded_ram(tmp_path):
    """Scale-16 WCC under RLIMIT_AS: the out-of-core runner completes in
    an address-space budget the in-memory engine provably exceeds."""
    g = generators.rmat(16, 16.0, seed=7)
    store_path = tmp_path / "scale16.shards"
    ShardStore.build(g, store_path, 16)
    del g
    env = dict(os.environ, PYTHONPATH="src")
    headroom = 192 * 1024 * 1024

    def child(mode):
        return subprocess.run(
            [sys.executable, "-c", _RLIMIT_CHILD, str(store_path), mode,
             str(headroom)],
            capture_output=True, text=True, cwd=os.getcwd(), env=env)

    ooc = child("out-of-core")
    assert ooc.returncode == 0, ooc.stderr
    assert "OK out-of-core" in ooc.stdout
    mem = child("in-memory")
    assert mem.returncode != 0, (
        "in-memory run unexpectedly fit the capped address space")
    assert "MemoryError" in mem.stderr or "_ArrayMemoryError" in mem.stderr
