"""Tests for the PageRank program (Theorem 1 exemplar)."""

import numpy as np
import pytest

from repro.algorithms import PageRank, reference
from repro.engine import ConflictProfile, EngineConfig, run
from repro.graph import DiGraph, generators


class TestConstruction:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            PageRank(epsilon=0.0)
        with pytest.raises(ValueError):
            PageRank(epsilon=-1e-3)

    def test_damping_validation(self):
        with pytest.raises(ValueError):
            PageRank(damping=0.0)
        with pytest.raises(ValueError):
            PageRank(damping=1.0)

    def test_traits(self):
        t = PageRank().traits
        assert t.conflict_profile is ConflictProfile.READ_WRITE
        assert t.converges_synchronously
        assert not t.is_monotone

    def test_edge_init_is_inverse_out_degree(self):
        g = DiGraph(3, [0, 0, 1], [1, 2, 2])
        state = PageRank().make_state(g)
        vals = state.edge("value")
        assert vals[0] == pytest.approx(0.5)  # 0 -> 1, outdeg(0) = 2
        assert vals[2] == pytest.approx(1.0)  # 1 -> 2, outdeg(1) = 1

    def test_rank_init_one(self):
        g = generators.cycle_graph(4)
        state = PageRank().make_state(g)
        assert np.all(state.vertex("rank") == 1.0)

    def test_float32_storage(self):
        g = generators.cycle_graph(4)
        state = PageRank().make_state(g)
        assert state.vertex("rank").dtype == np.float32
        assert state.edge("value").dtype == np.float32


class TestConvergence:
    @pytest.mark.parametrize("mode", ["sync", "deterministic", "nondeterministic"])
    def test_converges_all_modes(self, rmat_small, mode):
        res = run(PageRank(epsilon=1e-3), rmat_small, mode=mode, threads=4)
        assert res.converged

    @pytest.mark.parametrize("mode", ["deterministic", "nondeterministic"])
    def test_close_to_power_iteration(self, rmat_small, mode):
        res = run(PageRank(epsilon=1e-4), rmat_small, mode=mode, threads=8)
        ref = reference.pagerank_reference(rmat_small)
        # local convergence with threshold eps bounds each vertex's error
        # by O(eps / (1 - damping)) along propagation chains; allow slack.
        assert np.max(np.abs(res.result().astype(np.float64) - ref)) < 0.05

    def test_smaller_epsilon_more_accurate(self, rmat_small):
        ref = reference.pagerank_reference(rmat_small)
        errs = []
        for eps in (1e-2, 1e-4):
            res = run(PageRank(epsilon=eps), rmat_small, mode="deterministic")
            errs.append(np.max(np.abs(res.result().astype(np.float64) - ref)))
        assert errs[1] < errs[0]

    def test_cycle_exact_fixed_point(self):
        # On a directed cycle every vertex has rank exactly 1.
        g = generators.cycle_graph(8)
        res = run(PageRank(epsilon=1e-6), g, mode="deterministic")
        assert np.allclose(res.result(), 1.0, atol=1e-4)

    def test_dangling_vertex_no_scatter_crash(self):
        # Vertex 2 has no out-edges: update must not divide by zero.
        g = DiGraph(3, [0, 1], [1, 2])
        res = run(PageRank(epsilon=1e-5), g, mode="deterministic")
        assert res.converged
        assert np.all(np.isfinite(res.result()))

    def test_isolated_vertices_keep_base_rank(self):
        g = DiGraph(4, [0], [1])
        res = run(PageRank(epsilon=1e-6, damping=0.85), g, mode="deterministic")
        # vertices 2, 3 have no in-edges: rank = 1 - damping = 0.15.
        assert res.result()[2] == pytest.approx(0.15, abs=1e-5)
        assert res.result()[3] == pytest.approx(0.15, abs=1e-5)


class TestNondeterministicBehaviour:
    def test_only_read_write_conflicts(self, rmat_small):
        res = run(
            PageRank(epsilon=1e-3),
            rmat_small,
            mode="nondeterministic",
            config=EngineConfig(threads=8, seed=0),
        )
        assert res.conflicts.read_write > 0
        assert res.conflicts.write_write == 0

    def test_results_vary_across_seeds(self, er_medium):
        results = []
        for seed in range(3):
            res = run(
                PageRank(epsilon=1e-3),
                er_medium,
                mode="nondeterministic",
                config=EngineConfig(threads=8, seed=seed),
            )
            results.append(res.result().copy())
        pairwise_equal = [
            np.array_equal(results[i], results[j])
            for i in range(3)
            for j in range(i + 1, 3)
        ]
        assert not all(pairwise_equal)

    def test_deterministic_runs_identical_without_fp_noise(self, rmat_small):
        a = run(PageRank(epsilon=1e-3), rmat_small, mode="deterministic",
                config=EngineConfig(seed=1))
        b = run(PageRank(epsilon=1e-3), rmat_small, mode="deterministic",
                config=EngineConfig(seed=2))
        assert np.array_equal(a.result(), b.result())

    def test_fp_noise_varies_deterministic_runs(self, er_medium):
        results = []
        for seed in (1, 2, 3):
            res = run(PageRank(epsilon=1e-3), er_medium, mode="deterministic",
                      config=EngineConfig(seed=seed, fp_noise=True))
            results.append(res.result().copy())
        assert not (np.array_equal(results[0], results[1])
                    and np.array_equal(results[1], results[2]))
