"""Tests for autonomous priority scheduling, partitioning, and k-core."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    KCoreDecomposition,
    PrioritizedPageRank,
    PrioritizedSSSP,
    SSSP,
    kcore_reference,
    reference,
)
from repro.engine import EngineConfig, run
from repro.graph import (
    DiGraph,
    apply_partition,
    bfs_partition,
    contiguous_partition,
    generators,
    partition_quality,
    random_partition,
)


class TestPrioritizedPrograms:
    def test_prioritized_sssp_exact(self, er_medium):
        prog = SSSP(source=0)
        truth = reference.sssp_reference(er_medium, 0, prog.make_weights(er_medium))
        res = run(PrioritizedSSSP(source=0), er_medium, mode="pure-async",
                  config=EngineConfig(threads=4, seed=0))
        assert res.converged
        assert np.array_equal(res.result(), truth)

    def test_prioritized_pagerank_converges(self, rmat_small):
        res = run(PrioritizedPageRank(epsilon=1e-3), rmat_small, mode="pure-async",
                  config=EngineConfig(threads=4, seed=0))
        assert res.converged
        ref = reference.pagerank_reference(rmat_small)
        # pure-async local convergence is looser than barriered: residual
        # truncation compounds along whichever order priority induces.
        assert np.max(np.abs(res.result().astype(np.float64) - ref)) < 0.15

    def test_priority_order_honored(self):
        """Among simultaneously runnable tasks of one thread, the
        smallest priority value executes first."""
        order: list[int] = []

        class Spy(PrioritizedSSSP):
            def update(self, ctx):
                order.append(ctx.vid)
                super().update(ctx)

            def priority(self, vid, state):
                return -float(vid)  # force descending-vid execution

        g = DiGraph(6, [], [])  # no edges: all tasks runnable at t=0
        run(Spy(source=0), g, mode="pure-async",
            config=EngineConfig(threads=1, seed=0))
        assert order == [5, 4, 3, 2, 1, 0]

    def test_priority_ignored_by_barriered_engines(self, rmat_small):
        """Coordinated scheduling runs small-label-first regardless."""
        prog = SSSP(source=0)
        truth = reference.sssp_reference(rmat_small, 0, prog.make_weights(rmat_small))
        res = run(PrioritizedSSSP(source=0), rmat_small, mode="nondeterministic",
                  config=EngineConfig(threads=4, seed=0))
        assert np.array_equal(res.result(), truth)


class TestPartition:
    def test_random_balanced(self, er_medium):
        parts = random_partition(er_medium, 4, seed=1)
        q = partition_quality(er_medium, parts, 4)
        assert q.imbalance <= 1.01
        assert 0.0 < q.cut_fraction <= 1.0

    def test_contiguous_covers_all(self, er_medium):
        parts = contiguous_partition(er_medium, 3)
        assert parts.min() == 0 and parts.max() == 2
        # contiguous ranges
        assert np.all(np.diff(parts) >= 0)

    def test_bfs_beats_random_on_grid(self):
        g = generators.grid_graph(16, 16)
        rand_q = partition_quality(g, random_partition(g, 4, seed=1), 4)
        bfs_q = partition_quality(g, bfs_partition(g, 4, seed=1), 4)
        assert bfs_q.cut_edges < rand_q.cut_edges

    def test_bfs_partition_assigns_everything(self, rmat_small):
        parts = bfs_partition(rmat_small, 5, seed=3)
        assert np.all(parts >= 0)
        assert parts.max() < 5

    def test_apply_partition_preserves_structure(self, rmat_small):
        parts = bfs_partition(rmat_small, 4, seed=1)
        relabeled, mapping = apply_partition(rmat_small, parts, 4)
        assert relabeled.num_edges == rmat_small.num_edges
        # adjacency preserved through the relabeling
        for e in range(0, rmat_small.num_edges, 7):
            u, v = rmat_small.edge_endpoints(e)
            assert relabeled.has_edge(int(mapping[u]), int(mapping[v]))

    def test_apply_partition_makes_parts_contiguous(self, rmat_small):
        parts = random_partition(rmat_small, 4, seed=2)
        relabeled, mapping = apply_partition(rmat_small, parts, 4)
        # new label order sorted by part: part of new label i is nondecreasing
        new_parts = np.empty_like(parts)
        new_parts[mapping] = parts
        assert np.all(np.diff(new_parts) >= 0)

    def test_validation(self, rmat_small):
        with pytest.raises(ValueError):
            partition_quality(rmat_small, np.zeros(3), 2)
        with pytest.raises(ValueError):
            partition_quality(rmat_small, np.full(rmat_small.num_vertices, 9), 2)
        with pytest.raises(ValueError):
            random_partition(rmat_small, 0)

    def test_partition_plus_delaymodel_end_to_end(self, rmat_small):
        """The distributed recipe: partition, relabel, run with a cluster
        delay model — results stay exact."""
        from repro.algorithms import WeaklyConnectedComponents
        from repro.engine import DelayModel

        parts = bfs_partition(rmat_small, 4, seed=1)
        relabeled, _ = apply_partition(rmat_small, parts, 4)
        truth = reference.wcc_reference(relabeled)
        res = run(WeaklyConnectedComponents(), relabeled, mode="nondeterministic",
                  config=EngineConfig(threads=8,
                                      delay_model=DelayModel.distributed(2, network=32.0),
                                      seed=0))
        assert np.array_equal(res.result(), truth)


class TestKCore:
    def to_nx(self, g):
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_vertices))
        nxg.add_edges_from(
            (u, v) for u, v in zip(g.edge_src.tolist(), g.edge_dst.tolist()) if u != v
        )
        return nxg

    @pytest.mark.parametrize("builder", [
        lambda: generators.grid_graph(6, 6),
        lambda: generators.rmat(7, 5.0, seed=3),
        lambda: generators.random_tree(50, seed=2),
        lambda: generators.complete_graph(6),
    ], ids=["grid", "rmat", "tree", "complete"])
    def test_reference_matches_networkx(self, builder):
        g = builder()
        mine = kcore_reference(g)
        truth = nx.core_number(self.to_nx(g))
        assert all(mine[v] == truth[v] for v in range(g.num_vertices))

    @staticmethod
    def symmetric_rmat():
        from repro.graph import GraphBuilder

        base = generators.rmat(7, 5.0, seed=3)
        b = GraphBuilder(num_vertices=base.num_vertices)
        for e in range(base.num_edges):
            u, v = base.edge_endpoints(e)
            if u != v:
                b.add_undirected_edge(u, v)
        return b.build(dedup=True)

    @pytest.mark.parametrize("mode", ["sync", "deterministic", "nondeterministic"])
    def test_engine_matches_reference(self, mode):
        g = self.symmetric_rmat()
        truth = kcore_reference(g)
        res = run(KCoreDecomposition(), g, mode=mode, threads=4, seed=1)
        assert res.converged
        assert np.array_equal(res.result(), truth)

    @pytest.mark.parametrize("seed", range(3))
    def test_schedule_independent(self, seed):
        g = generators.grid_graph(7, 7)
        truth = kcore_reference(g)
        res = run(KCoreDecomposition(), g, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=seed))
        assert np.array_equal(res.result(), truth)

    def test_asymmetric_graph_rejected(self):
        g = DiGraph(3, [0, 1], [1, 2])
        with pytest.raises(ValueError, match="symmetric"):
            run(KCoreDecomposition(), g, mode="deterministic")

    def test_read_write_only(self):
        g = self.symmetric_rmat()
        res = run(KCoreDecomposition(), g, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=0))
        assert res.conflicts.write_write == 0

    def test_tree_core_is_one(self):
        g = generators.random_tree(30, seed=1)
        res = run(KCoreDecomposition(), g, mode="deterministic")
        assert np.all(res.result() == 1.0)

    def test_complete_graph_core(self):
        g = generators.complete_graph(5)
        res = run(KCoreDecomposition(), g, mode="deterministic")
        assert np.all(res.result() == 4.0)

    def test_h_index_function(self):
        from repro.algorithms.kcore import h_index

        assert h_index([]) == 0
        assert h_index([0, 0]) == 0
        assert h_index([1, 1, 1]) == 1
        assert h_index([3, 3, 3]) == 3
        assert h_index([5, 4, 3, 2, 1]) == 3
