"""Unit tests for UpdateContext: the scope rule and task generation."""

import numpy as np
import pytest

from repro.engine import FieldSpec, State, UpdateContext
from repro.graph import DiGraph


class RecordingStore:
    """EdgeStore stub that records accesses and serves a constant."""

    def __init__(self, value: float = 1.0):
        self.value = value
        self.reads: list[tuple[int, int, str]] = []
        self.writes: list[tuple[int, int, str, float]] = []

    def read(self, vid, eid, field):
        self.reads.append((vid, eid, field))
        return self.value

    def write(self, vid, eid, field, value):
        self.writes.append((vid, eid, field, value))


def make_ctx(vid=1, rng=None):
    g = DiGraph(3, [0, 1, 2], [1, 2, 0])
    state = State(g, {"x": FieldSpec(np.float64, 5.0)}, {"e": FieldSpec(np.float64, 0.0)})
    store = RecordingStore()
    schedule: set[int] = set()
    ctx = UpdateContext(vid, g, state, store, schedule, gather_rng=rng)
    return ctx, g, state, store, schedule


class TestTopology:
    def test_degrees(self):
        ctx, g, *_ = make_ctx()
        assert ctx.in_degree == 1
        assert ctx.out_degree == 1
        assert ctx.num_vertices == 3
        assert ctx.graph is g

    def test_in_out_edges(self):
        ctx, g, *_ = make_ctx()
        srcs, in_eids = ctx.in_edges()
        dsts, out_eids = ctx.out_edges()
        assert srcs.tolist() == [0]
        assert dsts.tolist() == [2]
        assert g.edge_endpoints(int(in_eids[0])) == (0, 1)
        assert g.edge_endpoints(int(out_eids[0])) == (1, 2)

    def test_incident_eids(self):
        ctx, *_ = make_ctx()
        assert len(ctx.incident_eids()) == 2


class TestEdgeAccess:
    def test_read_counts_and_delegates(self):
        ctx, _, _, store, _ = make_ctx()
        val = ctx.read_edge(0, "e")
        assert val == 1.0
        assert ctx.n_edge_reads == 1
        assert store.reads == [(1, 0, "e")]

    def test_write_counts_and_delegates(self):
        ctx, _, _, store, _ = make_ctx()
        ctx.write_edge(1, "e", 9.0)
        assert ctx.n_edge_writes == 1
        assert store.writes == [(1, 1, "e", 9.0)]

    def test_write_schedules_other_endpoint(self):
        # Edge 1 is (1 -> 2): writing it from vertex 1 must schedule 2.
        ctx, _, _, _, schedule = make_ctx(vid=1)
        ctx.write_edge(1, "e", 9.0)
        assert schedule == {2}

    def test_write_in_edge_schedules_source(self):
        # Edge 0 is (0 -> 1): writing it from vertex 1 must schedule 0.
        ctx, _, _, _, schedule = make_ctx(vid=1)
        ctx.write_edge(0, "e", 9.0)
        assert schedule == {0}

    def test_multiple_writes_accumulate_schedule(self):
        ctx, _, _, _, schedule = make_ctx(vid=1)
        ctx.write_edge(0, "e", 1.0)
        ctx.write_edge(1, "e", 2.0)
        assert schedule == {0, 2}


class TestVertexData:
    def test_get_set_own_vertex(self):
        ctx, _, state, _, _ = make_ctx(vid=1)
        assert ctx.get("x") == 5.0
        ctx.set("x", 7.5)
        assert state.vertex("x")[1] == 7.5
        # other vertices untouched
        assert state.vertex("x")[0] == 5.0


class TestGatherOrder:
    def test_identity_without_rng(self):
        ctx, *_ = make_ctx()
        eids = np.array([3, 1, 2])
        assert ctx.gather_order(eids).tolist() == [3, 1, 2]

    def test_permutation_with_rng(self):
        rng = np.random.default_rng(0)
        ctx, *_ = make_ctx(rng=rng)
        eids = np.arange(20)
        out = ctx.gather_order(eids)
        assert sorted(out.tolist()) == list(range(20))
        assert out.tolist() != list(range(20))  # overwhelmingly likely

    def test_single_element_unpermuted(self):
        rng = np.random.default_rng(0)
        ctx, *_ = make_ctx(rng=rng)
        assert ctx.gather_order([5]).tolist() == [5]


class TestFpRound:
    def test_identity_without_rng(self):
        ctx, *_ = make_ctx()
        assert ctx.fp_round(1.2345) == 1.2345

    def test_within_one_ulp_with_rng(self):
        rng = np.random.default_rng(1)
        ctx, *_ = make_ctx(rng=rng)
        x = np.float32(1.2345)
        results = {ctx.fp_round(float(x)) for _ in range(100)}
        lo = float(np.nextafter(x, np.float32(-np.inf)))
        hi = float(np.nextafter(x, np.float32(np.inf)))
        assert results <= {lo, float(x), hi}
        assert len(results) == 3  # all three outcomes occur over 100 draws


class TestScopeRule:
    """§II scope enforcement (EngineConfig.validate_scope)."""

    def make_strict_ctx(self, vid=1):
        g = DiGraph(4, [0, 1, 2], [1, 2, 3])
        state = State(g, {"x": FieldSpec(np.float64, 0.0)}, {"e": FieldSpec(np.float64, 0.0)})
        store = RecordingStore()
        return UpdateContext(vid, g, state, store, set(), strict_scope=True), g

    def test_incident_access_allowed(self):
        ctx, g = self.make_strict_ctx(vid=1)
        # edges (0->1) and (1->2) are incident to vertex 1
        ctx.read_edge(g.edge_id(0, 1), "e")
        ctx.write_edge(g.edge_id(1, 2), "e", 1.0)

    def test_non_incident_read_rejected(self):
        ctx, g = self.make_strict_ctx(vid=1)
        with pytest.raises(PermissionError, match="scope violation"):
            ctx.read_edge(g.edge_id(2, 3), "e")

    def test_non_incident_write_rejected(self):
        ctx, g = self.make_strict_ctx(vid=0)
        with pytest.raises(PermissionError, match="scope violation"):
            ctx.write_edge(g.edge_id(1, 2), "e", 5.0)

    def test_lax_by_default(self):
        ctx, g, state, store, _ = make_ctx(vid=1)
        ctx.read_edge(2, "e")  # edge (2 -> 0): not incident, but unchecked

    def test_engines_honor_validate_scope(self):
        """A scope-violating program is caught by every barriered engine."""
        from repro.algorithms import WeaklyConnectedComponents
        from repro.engine import EngineConfig, run
        from repro.graph import generators

        class Rogue(WeaklyConnectedComponents):
            def update(self, ctx):
                ctx.read_edge((int(ctx.incident_eids()[0]) + 1) % ctx.graph.num_edges
                              if ctx.graph.num_edges else 0, "label")

        g = generators.path_graph(6)
        cfg = EngineConfig(validate_scope=True, max_iterations=3)
        for mode in ("sync", "deterministic", "nondeterministic", "chromatic"):
            with pytest.raises(PermissionError):
                run(Rogue(), g, mode=mode, config=cfg)

    def test_honest_programs_pass_strict_mode(self):
        from repro.algorithms import PageRank, WeaklyConnectedComponents, SSSP
        from repro.engine import EngineConfig, run
        from repro.graph import generators

        g = generators.rmat(6, 4.0, seed=1)
        cfg = EngineConfig(validate_scope=True, threads=4, seed=0)
        for factory in (WeaklyConnectedComponents, lambda: PageRank(epsilon=1e-2),
                        lambda: SSSP(source=0)):
            res = run(factory(), g, mode="nondeterministic", config=cfg)
            assert res.converged
