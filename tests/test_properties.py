"""Reference graph computations validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    bfs_levels,
    dijkstra_distances,
    generators,
    graph_stats,
    is_weakly_connected,
    num_weakly_connected_components,
    weakly_connected_components,
)


def to_nx(g: DiGraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(g.num_vertices))
    nxg.add_edges_from(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
    return nxg


class TestStats:
    def test_triangle(self):
        g = DiGraph(3, [0, 1, 2], [1, 2, 0])
        s = graph_stats(g)
        assert s.num_vertices == 3
        assert s.num_edges == 3
        assert s.avg_degree == 1.0
        assert s.max_out_degree == 1
        assert s.num_self_loops == 0
        assert s.num_components == 1

    def test_self_loops_counted(self):
        g = DiGraph(2, [0, 1], [0, 1])
        assert graph_stats(g).num_self_loops == 2

    def test_empty(self):
        s = graph_stats(DiGraph(0, [], []))
        assert s.num_vertices == 0
        assert s.avg_degree == 0.0
        assert s.num_components == 0

    def test_as_row_keys(self):
        row = graph_stats(DiGraph(2, [0], [1])).as_row()
        assert set(row) == {"V", "E", "E/V", "max_out", "max_in", "self_loops", "WCC"}


class TestWCC:
    def test_matches_networkx(self):
        g = generators.rmat(7, 4.0, seed=6)
        mine = weakly_connected_components(g)
        nxg = to_nx(g)
        for comp in nx.weakly_connected_components(nxg):
            labels = {int(mine[v]) for v in comp}
            assert labels == {min(comp)}

    def test_labels_are_component_minima(self, disconnected):
        labels = weakly_connected_components(disconnected)
        assert labels.tolist() == [0, 0, 0, 0, 4, 4, 4]

    def test_num_components(self, disconnected):
        assert num_weakly_connected_components(disconnected) == 2

    def test_isolated_vertices_are_own_components(self):
        g = DiGraph(4, [0], [1])
        assert num_weakly_connected_components(g) == 3

    def test_is_weakly_connected(self, path8):
        assert is_weakly_connected(path8)

    def test_empty_graph_zero_components(self):
        assert num_weakly_connected_components(DiGraph(0, [], [])) == 0


class TestBFS:
    def test_matches_networkx(self):
        g = generators.erdos_renyi(80, 240, seed=8)
        mine = bfs_levels(g, 0)
        lengths = nx.single_source_shortest_path_length(to_nx(g), 0)
        for v in range(g.num_vertices):
            if v in lengths:
                assert mine[v] == lengths[v]
            else:
                assert mine[v] == np.inf

    def test_source_zero_distance(self, path8):
        assert bfs_levels(path8, 3)[3] == 0.0

    def test_directed_unreachable(self):
        g = DiGraph(3, [0], [1])
        levels = bfs_levels(g, 1)
        assert levels[0] == np.inf
        assert levels[2] == np.inf

    def test_empty_graph(self):
        assert bfs_levels(DiGraph(0, [], []), 0).size == 0


class TestDijkstra:
    def test_matches_networkx(self):
        g = generators.erdos_renyi(60, 200, seed=12)
        rng = np.random.default_rng(0)
        w = rng.uniform(1, 10, g.num_edges)
        mine = dijkstra_distances(g, 0, w)
        nxg = to_nx(g)
        for e in range(g.num_edges):
            u, v = g.edge_endpoints(e)
            # parallel edges collapse to min weight in networkx
            if nxg.has_edge(u, v):
                nxg[u][v]["weight"] = min(nxg[u][v].get("weight", np.inf), w[e])
        lengths = nx.single_source_dijkstra_path_length(nxg, 0)
        for v in range(g.num_vertices):
            if v in lengths:
                assert mine[v] == pytest.approx(lengths[v])
            else:
                assert mine[v] == np.inf

    def test_weight_length_mismatch(self):
        g = DiGraph(2, [0], [1])
        with pytest.raises(ValueError, match="one entry per edge"):
            dijkstra_distances(g, 0, np.ones(3))

    def test_negative_weight_rejected(self):
        g = DiGraph(2, [0], [1])
        with pytest.raises(ValueError, match="non-negative"):
            dijkstra_distances(g, 0, np.array([-1.0]))

    def test_unit_weights_equal_bfs(self, path8):
        w = np.ones(path8.num_edges)
        assert np.array_equal(dijkstra_distances(path8, 0, w), bfs_levels(path8, 0))
