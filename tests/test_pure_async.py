"""Tests for the barrier-free pure asynchronous executor."""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    SSSP,
    AntiParity,
    MaxLabelPropagation,
    PageRank,
    WeaklyConnectedComponents,
    reference,
)
from repro.engine import AtomicityPolicy, EngineConfig, run
from repro.graph import generators


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_wcc_exact(self, rmat_small, seed):
        truth = reference.wcc_reference(rmat_small)
        res = run(WeaklyConnectedComponents(), rmat_small, mode="pure-async",
                  config=EngineConfig(threads=8, seed=seed))
        assert res.converged
        assert np.array_equal(res.result(), truth)

    @pytest.mark.parametrize("seed", range(4))
    def test_sssp_exact(self, rmat_small, seed):
        prog = SSSP(source=0)
        truth = reference.sssp_reference(rmat_small, 0, prog.make_weights(rmat_small))
        res = run(SSSP(source=0), rmat_small, mode="pure-async",
                  config=EngineConfig(threads=8, seed=seed))
        assert res.converged
        assert np.array_equal(res.result(), truth)

    def test_bfs_exact(self, er_medium):
        res = run(BFS(source=0), er_medium, mode="pure-async",
                  config=EngineConfig(threads=4, seed=2))
        assert np.array_equal(res.result(), reference.bfs_reference(er_medium, 0))

    def test_maxlabel_exact(self, disconnected):
        res = run(MaxLabelPropagation(), disconnected, mode="pure-async",
                  config=EngineConfig(threads=3, seed=1))
        assert res.result().tolist() == [3, 3, 3, 3, 6, 6, 6]

    def test_pagerank_converges_near_reference(self, rmat_small):
        res = run(PageRank(epsilon=1e-4), rmat_small, mode="pure-async",
                  config=EngineConfig(threads=4, seed=0))
        assert res.converged
        ref = reference.pagerank_reference(rmat_small)
        assert np.max(np.abs(res.result().astype(np.float64) - ref)) < 0.05


class TestSemantics:
    def test_reproducible_from_seed(self, rmat_small):
        cfg = EngineConfig(threads=8, seed=42)
        a = run(PageRank(epsilon=1e-3), rmat_small, mode="pure-async", config=cfg)
        b = run(PageRank(epsilon=1e-3), rmat_small, mode="pure-async", config=cfg)
        assert np.array_equal(a.result(), b.result())
        assert a.total_updates == b.total_updates

    def test_no_barriers_single_stat_block(self, rmat_small):
        res = run(WeaklyConnectedComponents(), rmat_small, mode="pure-async",
                  config=EngineConfig(threads=4, seed=0))
        assert len(res.iterations) == 1  # barrier-free: one work record

    def test_task_counts_comparable_to_barriered(self, rmat_small):
        """GRACE's observation: the synchronous implementation is
        comparable to pure asynchrony — within a small factor in tasks."""
        barriered = run(WeaklyConnectedComponents(), rmat_small,
                        mode="nondeterministic",
                        config=EngineConfig(threads=8, seed=0))
        pure = run(WeaklyConnectedComponents(), rmat_small, mode="pure-async",
                   config=EngineConfig(threads=8, seed=0))
        assert pure.total_updates <= 4 * barriered.total_updates
        assert barriered.total_updates <= 4 * pure.total_updates

    def test_nonconvergent_program_hits_cap(self, path8):
        res = run(AntiParity(), path8, mode="pure-async",
                  config=EngineConfig(threads=2, seed=0, max_iterations=5))
        assert not res.converged

    def test_work_accounted_per_thread(self, rmat_small):
        res = run(BFS(source=0), rmat_small, mode="pure-async",
                  config=EngineConfig(threads=4, seed=0))
        stats = res.iterations[0]
        assert sum(stats.updates_per_thread) == res.total_updates
        assert len(stats.updates_per_thread) == 4

    def test_single_thread_still_correct(self, rmat_small):
        truth = reference.wcc_reference(rmat_small)
        res = run(WeaklyConnectedComponents(), rmat_small, mode="pure-async",
                  config=EngineConfig(threads=1, seed=0))
        assert np.array_equal(res.result(), truth)

    def test_torn_values_supported(self):
        g = generators.erdos_renyi(256, 1024, seed=3)
        prog = SSSP(source=0)
        truth = reference.sssp_reference(g, 0, prog.make_weights(g))
        wrong = 0
        for seed in range(3):
            res = run(SSSP(source=0), g, mode="pure-async",
                      config=EngineConfig(threads=8, seed=seed,
                                          atomicity=AtomicityPolicy.NONE,
                                          torn_probability=1.0,
                                          max_iterations=200))
            wrong += int(np.sum(res.result() != truth))
        # barrier-free racing reads exist, so corruption is possible;
        # at minimum the engine must not crash and must terminate
        assert wrong >= 0

    def test_conflicts_reported(self, star6):
        res = run(WeaklyConnectedComponents(), star6, mode="pure-async",
                  config=EngineConfig(threads=6, seed=1))
        summary = res.conflicts.summary()
        assert summary["read_write"] >= 0
        assert res.converged
