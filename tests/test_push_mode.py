"""Tests for push-mode execution and its sufficient condition."""

import numpy as np
import pytest

from repro.algorithms import (
    PushBFS,
    PushMinReach,
    PushPageRankDelta,
    min_reach_reference,
    reference,
)
from repro.engine import AtomicityPolicy, CombineOp, EngineConfig, run_push
from repro.engine.push import AccumulatorSpec
from repro.graph import DiGraph, generators
from repro.theory import Verdict, check_push_program


class TestCombineOp:
    def test_min_fold(self):
        assert CombineOp.MIN.fold(3.0, 5.0) == 3.0
        assert CombineOp.MIN.identity == np.inf

    def test_max_fold(self):
        assert CombineOp.MAX.fold(3.0, 5.0) == 5.0
        assert CombineOp.MAX.identity == -np.inf

    def test_add_fold(self):
        assert CombineOp.ADD.fold(3.0, 5.0) == 8.0
        assert CombineOp.ADD.identity == 0.0

    def test_idempotence_classification(self):
        assert CombineOp.MIN.idempotent
        assert CombineOp.MAX.idempotent
        assert not CombineOp.ADD.idempotent

    def test_all_commutative_associative(self):
        for op in CombineOp:
            assert op.commutative_associative


class TestPushBFS:
    @pytest.mark.parametrize("mode", ["deterministic", "nondeterministic"])
    def test_exact_levels(self, er_medium, mode):
        res = run_push(PushBFS(source=0), er_medium, mode=mode, threads=8, seed=1)
        assert res.converged
        assert np.array_equal(res.result(), reference.bfs_reference(er_medium, 0))

    @pytest.mark.parametrize("seed", range(4))
    def test_schedule_independent(self, rmat_small, seed):
        res = run_push(PushBFS(source=0), rmat_small, threads=16, seed=seed)
        assert np.array_equal(res.result(), reference.bfs_reference(rmat_small, 0))

    def test_unreachable_stay_infinite(self):
        g = DiGraph(4, [0], [1])
        res = run_push(PushBFS(source=0), g, threads=2, seed=0)
        assert res.result()[2] == np.inf

    def test_accumulator_contention_logged(self, rmat_small):
        res = run_push(PushBFS(source=0), rmat_small, threads=8, seed=0)
        # vertices with several in-neighbours on different threads race
        assert res.conflicts.write_write > 0

    def test_source_validation(self):
        with pytest.raises(ValueError):
            PushBFS(source=-1)
        g = DiGraph(2, [0], [1])
        with pytest.raises(ValueError, match="out of range"):
            PushBFS(source=5).make_state(g)


class TestPushPageRank:
    def test_validation(self):
        with pytest.raises(ValueError):
            PushPageRankDelta(epsilon=0.0)
        with pytest.raises(ValueError):
            PushPageRankDelta(damping=1.0)

    def test_matches_pull_fixed_point(self, rmat_small):
        res = run_push(PushPageRankDelta(epsilon=1e-7), rmat_small,
                       threads=8, seed=1)
        assert res.converged
        ref = reference.pagerank_reference(rmat_small)
        assert np.max(np.abs(res.result() - ref)) < 1e-3

    def test_deterministic_mode_matches_too(self, rmat_small):
        res = run_push(PushPageRankDelta(epsilon=1e-7), rmat_small,
                       mode="deterministic")
        ref = reference.pagerank_reference(rmat_small)
        assert np.max(np.abs(res.result() - ref)) < 1e-3

    def test_lost_updates_corrupt_fixed_point(self, rmat_small):
        """The push-mode condition's warning, demonstrated: without the
        atomic combine, lost ADD contributions wreck the ranks."""
        ref = reference.pagerank_reference(rmat_small)
        res = run_push(PushPageRankDelta(epsilon=1e-7), rmat_small,
                       threads=8, seed=1,
                       atomicity=AtomicityPolicy.NONE, torn_probability=0.5)
        assert res.conflicts.lost_writes > 0
        assert np.max(np.abs(res.result() - ref)) > 0.01

    def test_min_combine_survives_lost_updates(self, rmat_small):
        """Idempotent MIN re-pushes recover lost contributions: BFS stays
        exact even with the racy combine, as long as runs converge."""
        truth = reference.bfs_reference(rmat_small, 0)
        res = run_push(PushBFS(source=0), rmat_small, threads=8, seed=1,
                       atomicity=AtomicityPolicy.NONE, torn_probability=0.3,
                       max_iterations=500)
        if res.converged:
            # a lost push may prune an entire propagation subtree; but any
            # *finite* distance must still be a valid path length >= truth
            finite = np.isfinite(res.result())
            assert np.all(res.result()[finite] >= truth[finite])


class TestPushMinReach:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_reference(self, rmat_small, seed):
        res = run_push(PushMinReach(), rmat_small, threads=8, seed=seed)
        assert res.converged
        assert np.array_equal(res.result(), min_reach_reference(rmat_small))

    def test_on_dag(self):
        g = DiGraph(5, [0, 1, 2, 3], [1, 2, 3, 4])  # chain 0->1->2->3->4
        res = run_push(PushMinReach(), g, threads=2, seed=0)
        assert res.result().tolist() == [0, 0, 0, 0, 0]

    def test_directional(self):
        g = DiGraph(3, [2], [1])  # only 2 -> 1
        res = run_push(PushMinReach(), g, threads=2, seed=0)
        # vertex 1's ancestors = {1, 2}: min is 1; vertex 0 isolated.
        assert res.result().tolist() == [0, 1, 2]


class TestPushEligibility:
    def test_push_bfs_eligible(self):
        report = check_push_program(PushBFS(source=0))
        assert report.verdict is Verdict.ELIGIBLE_PUSH
        assert report.results_deterministic

    def test_push_pagerank_eligible_with_warning(self):
        report = check_push_program(PushPageRankDelta())
        assert report.verdict is Verdict.ELIGIBLE_PUSH
        assert any("exactly once" in w for w in report.warnings)
        assert not report.results_deterministic

    def test_nonconvergent_push_not_established(self):
        prog = PushBFS(source=0)
        from repro.engine import AlgorithmTraits, ConflictProfile

        prog.traits = AlgorithmTraits(
            name="x",
            conflict_profile=ConflictProfile.WRITE_WRITE,
            converges_synchronously=False,
            converges_async_deterministic=False,
        )
        assert check_push_program(prog).verdict is Verdict.NOT_ESTABLISHED


class TestRunPushApi:
    def test_bad_mode(self, path8):
        with pytest.raises(ValueError, match="unknown push mode"):
            run_push(PushBFS(source=0), path8, mode="sync")

    def test_config_kwargs_exclusive(self, path8):
        with pytest.raises(ValueError, match="not both"):
            run_push(PushBFS(source=0), path8, config=EngineConfig(), threads=2)

    def test_deterministic_forces_single_thread(self, path8):
        res = run_push(PushBFS(source=0), path8, mode="deterministic",
                       config=EngineConfig(threads=8, jitter=0.5))
        assert res.config.threads == 1
        assert res.config.jitter == 0.0

    def test_observer_called(self, path8):
        calls = []
        run_push(PushBFS(source=0), path8, threads=2, seed=0,
                 observer=lambda it, state, sched: calls.append(it))
        assert calls == sorted(calls)
        assert calls

    def test_reproducible(self, rmat_small):
        a = run_push(PushPageRankDelta(epsilon=1e-5), rmat_small, threads=8, seed=3)
        b = run_push(PushPageRankDelta(epsilon=1e-5), rmat_small, threads=8, seed=3)
        assert np.array_equal(a.result(), b.result())


# ---------------------------------------------------------------------------
# regression: a lost push must not fire the task-generation rule
# ---------------------------------------------------------------------------

class _Slot:
    def __init__(self, time, thread):
        self.time = time
        self.thread = thread


def _bare_engine(*, lost_p=0.0):
    """A PushEngine wired up just enough to drive deliver/fold_visible
    directly (no run loop)."""
    from repro.engine.conflicts import ConflictLog
    from repro.engine.delaymodel import DelayModel
    from repro.engine.push import PushEngine

    engine = PushEngine()
    engine._acc_specs = {"dist": AccumulatorSpec(CombineOp.MIN)}
    engine._pending = {"dist": {}}
    engine._delay_model = DelayModel.uniform(2.0)
    engine.log = ConflictLog()
    if lost_p > 0:
        engine._lost_rng = np.random.default_rng(0)
        engine._lost_p = lost_p
    return engine


class TestLostPushScheduling:
    def test_lost_push_does_not_schedule(self):
        """deliver() returning False (racy non-atomic combine lost the
        contribution) must leave the frontier unchanged: a push that
        never landed cannot generate a task."""
        from repro.engine.push import PushContext, _PendingPush

        engine = _bare_engine(lost_p=1.0)
        # A pending push from another thread within the delay window:
        # the incoming combine races and, at lost_p=1, always loses.
        engine._pending["dist"][3] = [_PendingPush(0.0, 0, sender=1, value=5.0)]
        engine._current_slot = _Slot(time=0.5, thread=1)
        graph = DiGraph(4, [2], [3])
        schedule: set[int] = set()
        ctx = PushContext(2, graph, None, engine, schedule)
        ctx.push(3, "dist", 7.0)
        assert schedule == set(), "a lost push fired the task-generation rule"
        assert engine.log.lost_writes == 1
        assert engine.log.write_write == 1
        # The contribution really is gone — not folded in later.
        assert len(engine._pending["dist"][3]) == 1

    def test_delivered_push_schedules(self):
        from repro.engine.push import PushContext

        engine = _bare_engine(lost_p=1.0)  # lossy, but nothing races
        engine._current_slot = _Slot(time=0.5, thread=1)
        schedule: set[int] = set()
        ctx = PushContext(2, DiGraph(4, [2], [3]), None, engine, schedule)
        ctx.push(3, "dist", 7.0)
        assert schedule == {3}
        assert engine.log.lost_writes == 0

    # End-to-end, a lost push always has the delivered sibling it raced
    # with, and *that* push schedules the shared target — so the bug is
    # only observable at the deliver()/schedule seam the unit tests
    # above drive directly.


class TestStaleReadAccounting:
    def test_stale_reads_counted_per_invisible_push(self):
        """fold_visible bumps stale_reads once per in-flight push it
        failed to observe (pull mode's per-access accounting), not once
        per fold call."""
        from repro.engine.push import _PendingPush

        engine = _bare_engine()
        # Two invisible pushes (other thread, inside the delay window)
        # and one visible one (same thread, earlier time).
        engine._pending["dist"][3] = [
            _PendingPush(0.4, 1, sender=0, value=9.0),
            _PendingPush(0.6, 1, sender=1, value=8.0),
            _PendingPush(0.0, 0, sender=2, value=7.0),
        ]
        engine._current_slot = _Slot(time=0.5, thread=0)
        acc = engine.fold_visible(3, "dist", consume=True)
        assert acc == 7.0  # only the same-thread earlier push is visible
        assert engine.log.stale_reads == 2
        # The invisible ones stay pending for the next opportunity.
        assert len(engine._pending["dist"][3]) == 2


# ---------------------------------------------------------------------------
# CombineOp.fold algebra (property-based, incl. NaN / +-inf)
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_any_float = st.floats(allow_nan=True, allow_infinity=True)
_exact_ints = st.integers(-(2 ** 26), 2 ** 26).map(float)
_FOLD_SETTINGS = dict(max_examples=200, deadline=None)


def _feq(a: float, b: float) -> bool:
    """Float equality where NaN == NaN (fold propagates NaN)."""
    return (a != a and b != b) or a == b


class TestCombineFoldProperties:
    @settings(**_FOLD_SETTINGS)
    @given(_any_float, _any_float)
    def test_min_max_commutative(self, a, b):
        for op in (CombineOp.MIN, CombineOp.MAX):
            assert _feq(op.fold(a, b), op.fold(b, a)), (op, a, b)

    @settings(**_FOLD_SETTINGS)
    @given(_any_float, _any_float, _any_float)
    def test_min_max_associative(self, a, b, c):
        for op in (CombineOp.MIN, CombineOp.MAX):
            assert _feq(op.fold(op.fold(a, b), c),
                        op.fold(a, op.fold(b, c))), (op, a, b, c)

    @settings(**_FOLD_SETTINGS)
    @given(_any_float)
    def test_min_max_idempotent(self, a):
        for op in (CombineOp.MIN, CombineOp.MAX):
            assert _feq(op.fold(a, a), a), (op, a)

    @settings(**_FOLD_SETTINGS)
    @given(_any_float, _any_float)
    def test_add_commutative(self, a, b):
        assert _feq(CombineOp.ADD.fold(a, b), CombineOp.ADD.fold(b, a))

    @settings(**_FOLD_SETTINGS)
    @given(_exact_ints, _exact_ints, _exact_ints)
    def test_add_associative_on_exact_values(self, a, b, c):
        # IEEE ADD is not associative in general; the algebra only
        # claims it on exactly-representable contributions (sums stay
        # well under 2**53 here).
        op = CombineOp.ADD
        assert op.fold(op.fold(a, b), c) == op.fold(a, op.fold(b, c))

    @settings(**_FOLD_SETTINGS)
    @given(_any_float)
    def test_identity_element(self, a):
        for op in (CombineOp.MIN, CombineOp.MAX, CombineOp.ADD):
            assert _feq(op.fold(op.identity, a), a), (op, a)

    def test_nan_propagates_symmetrically(self):
        nan = float("nan")
        for op in (CombineOp.MIN, CombineOp.MAX):
            assert op.fold(nan, 1.0) != op.fold(nan, 1.0)  # NaN out
            assert _feq(op.fold(nan, 1.0), op.fold(1.0, nan))
