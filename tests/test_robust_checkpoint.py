"""Barrier checkpoint/resume: round-trip, kill/resume bit-identity, CLI.

The headline scenario is the PR's acceptance criterion: a PageRank run
on an RMAT-10 graph killed by an injected crash resumes from its last
barrier checkpoint and finishes with the bit-identical final ranking
and a provenance trace whose concatenation matches the uninterrupted
run (``repro trace diff`` exit 0).
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro import cli
from repro.algorithms import PageRank, WeaklyConnectedComponents
from repro.engine import EngineConfig, run
from repro.engine.atomicity import AtomicityPolicy
from repro.engine.delaymodel import DelayModel
from repro.engine.dispatch import DispatchPolicy
from repro.graph import generators
from repro.robust import CheckpointError, ConvergenceFailure, DegradationPolicy
from repro.storage import Checkpoint, load_checkpoint, save_checkpoint
from repro.storage.checkpoint import (
    CHECKPOINT_MAGIC,
    config_from_dict,
    config_to_dict,
)


@pytest.fixture(scope="module")
def rmat10():
    return generators.rmat(10, 8.0, seed=3)


# ----------------------------------------------------------------------
# file format round-trip
# ----------------------------------------------------------------------
def test_checkpoint_round_trip(tmp_path):
    path = tmp_path / "ck.bin"
    rng = np.random.default_rng(5)
    rng.random(17)  # advance so the state is non-trivial
    ckpt = Checkpoint(
        iteration=7,
        mode="nondeterministic",
        program="PageRank",
        config=EngineConfig(threads=3, delay=4.0, seed=2,
                            atomicity=AtomicityPolicy.LOCK,
                            dispatch=DispatchPolicy.ROUND_ROBIN),
        frontier=np.array([1, 4, 9], dtype=np.int64),
        vertex_arrays={"rank": np.linspace(0, 1, 10),
                       "residual": np.zeros(10, dtype=np.float32)},
        edge_arrays={"weight": np.arange(6, dtype=np.float64)},
        rng_states={"fp": rng.bit_generator.state},
        conflicts={"write_write": 12, "per_iteration": {"3": 4}},
        extra={"note": "round-trip"},
    )
    save_checkpoint(path, ckpt)
    loaded = load_checkpoint(path)
    assert loaded.iteration == 7
    assert loaded.mode == "nondeterministic"
    assert loaded.program == "PageRank"
    assert loaded.config == ckpt.config
    np.testing.assert_array_equal(loaded.frontier, ckpt.frontier)
    for name, arr in ckpt.vertex_arrays.items():
        np.testing.assert_array_equal(loaded.vertex_arrays[name], arr)
        assert loaded.vertex_arrays[name].dtype == arr.dtype
    np.testing.assert_array_equal(loaded.edge_arrays["weight"],
                                  ckpt.edge_arrays["weight"])
    assert loaded.rng_states == {"fp": rng.bit_generator.state}
    assert loaded.conflicts["write_write"] == 12
    assert loaded.extra == {"note": "round-trip"}
    assert not list(tmp_path.glob("*.tmp.*"))  # atomic rename cleaned up


def test_config_dict_round_trip_with_delay_model():
    config = EngineConfig(threads=5, delay_model=DelayModel(
        intra=1.0, inter=6.0, group_size=2), jitter=0.25,
        worker_timeout_s=None)
    assert config_from_dict(config_to_dict(config)) == config
    # unknown keys from a future version are ignored, not fatal
    d = config_to_dict(config)
    d["added_in_v99"] = True
    assert config_from_dict(d) == config


def test_load_rejects_missing_garbage_and_truncated(tmp_path):
    with pytest.raises(CheckpointError):
        load_checkpoint(tmp_path / "nope.bin")

    garbage = tmp_path / "garbage.bin"
    garbage.write_bytes(b"not a checkpoint at all")
    with pytest.raises(CheckpointError):
        load_checkpoint(garbage)

    wrong_version = tmp_path / "vfuture.bin"
    wrong_version.write_bytes(CHECKPOINT_MAGIC + struct.pack("<IQ", 99, 2) + b"{}")
    with pytest.raises(CheckpointError):
        load_checkpoint(wrong_version)

    good = tmp_path / "good.bin"
    save_checkpoint(good, Checkpoint(
        iteration=1, mode="sync", program="X", config=EngineConfig(),
        frontier=np.array([0], dtype=np.int64),
        vertex_arrays={"v": np.ones(4)}, edge_arrays={}))
    data = good.read_bytes()
    truncated = tmp_path / "trunc.bin"
    truncated.write_bytes(data[:-8])
    with pytest.raises(CheckpointError):
        load_checkpoint(truncated)


def test_save_checkpoint_is_durable_ordered(tmp_path, monkeypatch):
    """The write discipline must be file fsync -> rename -> parent
    directory fsync, in that order.  Without the directory fsync the
    rename itself can be rolled back by power loss even though the
    checkpoint *data* survived — and anything journaled after
    ``save_checkpoint`` returns (the service's WAL ``barrier`` record)
    would then reference a checkpoint that no longer exists."""
    import os
    import stat

    events = []
    real_fsync, real_replace = os.fsync, os.replace

    def spy_fsync(fd):
        kind = "dir" if stat.S_ISDIR(os.fstat(fd).st_mode) else "file"
        events.append(("fsync", kind))
        return real_fsync(fd)

    def spy_replace(src, dst):
        events.append(("rename", None))
        return real_replace(src, dst)

    monkeypatch.setattr(os, "fsync", spy_fsync)
    monkeypatch.setattr(os, "replace", spy_replace)
    path = tmp_path / "ordered.ckpt"
    save_checkpoint(path, Checkpoint(
        iteration=1, mode="sync", program="X", config=EngineConfig(),
        frontier=np.array([0], dtype=np.int64),
        vertex_arrays={"v": np.ones(4)}, edge_arrays={}))
    assert ("fsync", "file") in events and ("fsync", "dir") in events
    assert events.index(("fsync", "file")) \
        < events.index(("rename", None)) \
        < events.index(("fsync", "dir"))
    # and no tmp litter once the rename landed
    assert [p.name for p in tmp_path.iterdir()] == ["ordered.ckpt"]


def test_service_barrier_journal_append_follows_checkpoint(tmp_path):
    """Cross-layer ordering: the scheduler's ``barrier`` WAL record for
    a checkpointed iteration is appended only after ``save_checkpoint``
    has completed (checkpoint durable before the journal claims it)."""
    import os
    import time

    from repro.service import GraphService, JobState
    from repro.storage import checkpoint as ckpt_mod

    order = []
    real_save = ckpt_mod.save_checkpoint

    def spy_save(path, ck):
        real_save(path, ck)
        order.append(("ckpt", ck.iteration))

    svc = GraphService(tmp_path / "svc", max_concurrent=1)
    svc.graphs.register("tiny", {"dataset": "web-google-mini",
                                 "scale": 7, "seed": 1})
    real_append = svc.journal.append

    def spy_append(record_type, **fields):
        if record_type == "barrier":
            order.append(("journal", fields.get("checkpoint_iteration")))
        return real_append(record_type, **fields)

    svc.journal.append = spy_append
    # patch where the supervisor looks it up
    import repro.robust.supervisor as sup_mod

    saved = sup_mod.save_checkpoint if hasattr(
        sup_mod, "save_checkpoint") else None
    ckpt_mod.save_checkpoint = spy_save
    if saved is not None:
        sup_mod.save_checkpoint = spy_save
    try:
        svc.start()
        jid = svc.submit({"algorithm": "WCC", "graph": "tiny",
                          "checkpoint_every": 1})
        deadline = time.monotonic() + 60
        while svc.status(jid)["state"] not in JobState.TERMINAL:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert svc.status(jid)["state"] == JobState.DONE
    finally:
        svc.shutdown(drain=True, timeout=60)
        ckpt_mod.save_checkpoint = real_save
        if saved is not None:
            sup_mod.save_checkpoint = saved
    ckpts = [e for e in order if e[0] == "ckpt"]
    assert ckpts, "run never checkpointed"
    journaled = [it for kind, it in order if kind == "journal" and it]
    assert journaled, "no barrier record claimed a checkpoint"
    for iteration in journaled:
        assert ("ckpt", iteration) in order
        assert order.index(("ckpt", iteration)) \
            < order.index(("journal", iteration)), \
            f"journal claimed checkpoint {iteration} before it was durable"


# ----------------------------------------------------------------------
# kill/resume bit-identity (the acceptance criterion)
# ----------------------------------------------------------------------
def test_killed_run_resumes_bit_identically_with_matching_trace(
        rmat10, tmp_path):
    """Crash at iteration 5, resume in a fresh call, diff the traces."""
    trace_full = str(tmp_path / "full.jsonl")
    trace_killed = str(tmp_path / "killed.jsonl")
    trace_resumed = str(tmp_path / "resumed.jsonl")
    ck = str(tmp_path / "pr.ckpt")

    base = run(PageRank(epsilon=1e-3), rmat10, mode="nondeterministic",
               threads=8, seed=0, record=trace_full)

    with pytest.raises(ConvergenceFailure):
        run(PageRank(epsilon=1e-3), rmat10, mode="nondeterministic",
            threads=8, seed=0, record=trace_killed, faults="crash@5",
            checkpoint=ck, policy=DegradationPolicy(max_restarts=0))

    res = run(PageRank(epsilon=1e-3), rmat10, mode="nondeterministic",
              resume_from=ck, record=trace_resumed)
    assert res.converged
    np.testing.assert_array_equal(base.state.vertex("rank"),
                                  res.state.vertex("rank"))

    # concatenated provenance (killed prefix + resumed suffix) must align
    # with the uninterrupted run's, event for event
    stitched = tmp_path / "stitched.jsonl"
    stitched.write_bytes((tmp_path / "killed.jsonl").read_bytes()
                         + (tmp_path / "resumed.jsonl").read_bytes())
    assert cli.main(["trace", "diff", trace_full, str(stitched)]) == 0


def test_trace_stitch_trims_hard_kill_partial_iteration(rmat10, tmp_path):
    """A SIGKILL (unlike the barrier-aligned crash fault) lands mid-
    iteration, so the killed trace ends with a partial copy of the very
    iteration the resume replays in full.  ``trace stitch`` must trim
    that overlap; a naive byte concatenation must demonstrably fail."""
    import json

    trace_full = tmp_path / "full.jsonl"
    trace_killed = tmp_path / "killed.jsonl"
    trace_resumed = tmp_path / "resumed.jsonl"
    ck = str(tmp_path / "pr.ckpt")

    run(PageRank(epsilon=1e-3), rmat10, mode="nondeterministic",
        threads=8, seed=0, record=str(trace_full))
    with pytest.raises(ConvergenceFailure):
        run(PageRank(epsilon=1e-3), rmat10, mode="nondeterministic",
            threads=8, seed=0, record=str(trace_killed), faults="crash@5",
            checkpoint=ck, policy=DegradationPolicy(max_restarts=0))

    # emulate the kill landing mid-iteration 5: graft the first few
    # iteration-5 provenance lines onto the killed trace, plus the torn
    # half-line a killed process leaves behind
    it5 = [line for line in trace_full.read_text().splitlines(keepends=True)
           if json.loads(line).get("type") == "provenance"
           and json.loads(line).get("iteration") == 5]
    assert len(it5) > 8
    with open(trace_killed, "a", encoding="utf-8") as fh:
        fh.writelines(it5[:7])
        fh.write(it5[7][: len(it5[7]) // 2])

    res = run(PageRank(epsilon=1e-3), rmat10, mode="nondeterministic",
              resume_from=ck, record=str(trace_resumed))
    assert res.converged

    # even dropping the torn half-line, a naive concatenation duplicates
    # the replayed iteration-5 events and diff reports a false divergence
    naive = tmp_path / "naive.jsonl"
    killed_bytes = trace_killed.read_bytes()
    complete = killed_bytes[: killed_bytes.rfind(b"\n") + 1]
    naive.write_bytes(complete + trace_resumed.read_bytes())
    assert cli.main(["trace", "diff", str(trace_full), str(naive)]) == 3

    stitched = tmp_path / "stitched.jsonl"
    assert cli.main(["trace", "stitch", str(trace_killed),
                     str(trace_resumed), "-o", str(stitched)]) == 0
    assert cli.main(["trace", "diff", str(trace_full), str(stitched)]) == 0
    assert cli.main(["trace", "lint", str(stitched)]) == 0


def test_self_healing_run_trace_matches_uninterrupted(rmat10, tmp_path):
    """Same criterion, single call: the supervised loop restarts itself
    and the recorder extends (not truncates) the trace across attempts."""
    trace_full = str(tmp_path / "full.jsonl")
    trace_healed = str(tmp_path / "healed.jsonl")
    ck = str(tmp_path / "pr.ckpt")

    base = run(PageRank(epsilon=1e-3), rmat10, mode="nondeterministic",
               threads=8, seed=0, record=trace_full)
    res = run(PageRank(epsilon=1e-3), rmat10, mode="nondeterministic",
              threads=8, seed=0, record=trace_healed, faults="crash@5",
              checkpoint=ck)
    assert res.converged
    assert res.extra["degradations"][0]["action"] == "restart"
    np.testing.assert_array_equal(base.state.vertex("rank"),
                                  res.state.vertex("rank"))
    assert cli.main(["trace", "diff", trace_full, trace_healed]) == 0


def test_trace_diff_detects_genuinely_different_runs(rmat10, tmp_path):
    a = str(tmp_path / "a.jsonl")
    b = str(tmp_path / "b.jsonl")
    run(PageRank(epsilon=1e-3), rmat10, mode="nondeterministic",
        threads=8, seed=0, record=a)
    run(PageRank(epsilon=1e-3), rmat10, mode="nondeterministic",
        threads=8, seed=1, record=b)
    assert cli.main(["trace", "diff", a, b]) == 3  # sanity: diff can fail


def test_resume_across_engines_and_checkpoint_every(tmp_path):
    g = generators.rmat(7, 6.0, seed=2)
    for mode in ("sync", "deterministic", "chromatic", "nondeterministic"):
        ck = str(tmp_path / f"{mode}.ckpt")
        base = run(WeaklyConnectedComponents(), g, mode=mode, threads=4,
                   seed=0)
        res = run(WeaklyConnectedComponents(), g, mode=mode, threads=4,
                  seed=0, faults="crash@1", checkpoint=ck, checkpoint_every=2)
        assert res.converged, mode
        assert res.extra["last_checkpoint_iteration"] % 2 == 0
        np.testing.assert_array_equal(base.state.vertex("label"),
                                      res.state.vertex("label"))


def test_resume_guards(rmat10, tmp_path):
    ck = str(tmp_path / "pr.ckpt")
    run(PageRank(epsilon=1e-3), rmat10, mode="nondeterministic",
        threads=4, seed=0, checkpoint=ck)
    with pytest.raises(CheckpointError, match="mode"):
        run(PageRank(epsilon=1e-3), rmat10, mode="sync", resume_from=ck)
    with pytest.raises(CheckpointError, match="program"):
        run(WeaklyConnectedComponents(), rmat10, mode="nondeterministic",
            resume_from=ck)


def test_pure_async_refuses_checkpoint(tmp_path):
    g = generators.path_graph(8)
    with pytest.raises(CheckpointError, match="barrier-free"):
        run(WeaklyConnectedComponents(), g, mode="pure-async",
            checkpoint=str(tmp_path / "nope.ckpt"))


# ----------------------------------------------------------------------
# runner validation satellite
# ----------------------------------------------------------------------
def test_runner_rejects_bad_bounds():
    g = generators.path_graph(4)
    prog = WeaklyConnectedComponents()
    with pytest.raises(ValueError, match="max_iterations"):
        run(prog, g, max_iterations=0)
    with pytest.raises(ValueError, match="max_iterations"):
        run(prog, g, max_iterations=2.5)
    with pytest.raises(ValueError, match="max_iterations"):
        run(prog, g, max_iterations="10")
    with pytest.raises(ValueError, match="max_iterations"):
        run(prog, g, max_iterations=True)
    with pytest.raises(ValueError, match="deadline_s"):
        run(prog, g, deadline_s=-1.0)
    with pytest.raises(ValueError, match="deadline_s"):
        run(prog, g, deadline_s=float("nan"))
    with pytest.raises(ValueError, match="checkpoint_every"):
        run(prog, g, faults="crash@1", checkpoint_every=0)
    with pytest.raises(ValueError, match="checkpoint_every"):
        run(prog, g, checkpoint_every=-2)


def test_runner_rejects_supervisor_plus_convenience_kwargs():
    from repro.robust import Supervisor

    g = generators.path_graph(4)
    with pytest.raises(ValueError, match="supervisor"):
        run(WeaklyConnectedComponents(), g, supervisor=Supervisor(),
            faults="crash@1")


# ----------------------------------------------------------------------
# CLI satellite: repro run --checkpoint / --resume
# ----------------------------------------------------------------------
def test_cli_checkpoint_then_resume(tmp_path, capsys):
    ck = str(tmp_path / "cli.ckpt")
    code = cli.main(["run", "PageRank", "--scale", "7",
                     "--faults", "crash@2", "--checkpoint", ck])
    assert code == 0
    out = capsys.readouterr()
    assert "fault injected: kind=crash" in out.err
    assert "degradation: action=restart" in out.err

    code = cli.main(["run", "PageRank", "--scale", "7", "--resume", ck])
    assert code == 0  # resumed from the final barrier: converged


def test_cli_watchdog_flags_route_through(capsys):
    # Healthy run: the armed watchdog must stay silent and exit 0.  The
    # degradation behaviour itself is covered by the API-level tests on
    # matching graphs (no bundled dataset is a matching).
    code = cli.main(["run", "PageRank", "--scale", "7", "--watchdog",
                     "--deadline-s", "300", "--fallback", "deterministic"])
    assert code == 0
    out = capsys.readouterr()
    assert "degradation:" not in out.err


def test_cli_faults_spec_error_is_a_clean_failure(tmp_path):
    with pytest.raises(ValueError, match="fault"):
        cli.main(["run", "PageRank", "--scale", "7", "--faults", "boom@1"])
