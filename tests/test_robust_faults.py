"""Fault-injection layer: plan parsing, each fault kind, engine matrix.

The chaos-marked matrix at the bottom (also run by the CI ``chaos`` job)
drives every engine through crash, stall, and torn-write plans on an
RMAT-8 graph and asserts the supervised loop always reaches a converged
result.
"""

from __future__ import annotations

import time
from typing import Mapping

import numpy as np
import pytest

from repro.algorithms import PageRank, WeaklyConnectedComponents
from repro.engine import EngineConfig, run
from repro.engine.program import UpdateContext, VertexProgram
from repro.engine.state import FieldSpec
from repro.engine.threads_engine import ThreadsEngine
from repro.graph import generators
from repro.robust import (
    ConvergenceFailure,
    Fault,
    FaultPlan,
    InjectedCrash,
    WorkerTimeout,
)


# ----------------------------------------------------------------------
# plan construction and parsing
# ----------------------------------------------------------------------
def test_spec_grammar_all_kinds():
    plan = FaultPlan.from_spec(
        "crash@3; crash@4:t1, stall@2:t0:0.5; torn@4:weight:e7;"
        "lost@5:0.5, delay@6:x4"
    )
    kinds = [(f.kind, f.iteration) for f in plan.faults]
    assert kinds == [
        ("crash", 3), ("crash", 4), ("stall", 2),
        ("torn_write", 4), ("lost_update", 5), ("delay", 6),
    ]
    assert plan.faults[1].thread == 1
    assert plan.faults[2].thread == 0 and plan.faults[2].seconds == 0.5
    assert plan.faults[3].field == "weight" and plan.faults[3].eid == 7
    assert plan.faults[4].fraction == 0.5
    assert plan.faults[5].factor == 4.0


def test_spec_passthrough_and_lists():
    plan = FaultPlan([Fault("crash", 2)], seed=9)
    assert FaultPlan.from_spec(plan) is plan
    mixed = FaultPlan.from_spec(
        [Fault("stall", 1), {"kind": "torn", "iteration": 2}, "lost@3"])
    assert [f.kind for f in mixed.faults] == [
        "stall", "torn_write", "lost_update"]


@pytest.mark.parametrize("bad", [
    "crash",           # no @iteration
    "crash@x",         # non-int iteration
    "boom@3",          # unknown kind
    "crash@3:5.0",     # numeric opt meaningless for crash
    "crash@-1",        # negative iteration
])
def test_spec_rejects_malformed_tokens(bad):
    with pytest.raises(ValueError):
        FaultPlan.from_spec(bad)


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault("stall", 0, seconds=-1.0)
    with pytest.raises(ValueError):
        Fault("lost_update", 0, fraction=0.0)
    with pytest.raises(ValueError):
        Fault("delay", 0, factor=0.5)


def test_once_semantics():
    plan = FaultPlan.from_spec("crash@1;torn@1")
    # crash consumes on firing, torn re-arms
    (i, f), = plan.matching("crash", 1)
    plan.fire(i)
    assert list(plan.matching("crash", 1)) == []
    (j, _), = plan.matching("torn_write", 1)
    plan.fire(j)
    assert len(list(plan.matching("torn_write", 1))) == 1
    assert [e["kind"] for e in plan.fired] == ["crash", "torn_write"]


# ----------------------------------------------------------------------
# deterministic application helpers
# ----------------------------------------------------------------------
def test_drop_scatter_is_seeded_and_re_appliable():
    plan = FaultPlan.from_spec("lost@4:0.5", seed=11)
    schedule = np.arange(10, dtype=np.int64)
    kept1 = plan.drop_scatter(4, schedule.copy())
    kept2 = FaultPlan.from_spec("lost@4:0.5", seed=11).drop_scatter(
        4, schedule.copy())
    assert kept1.size == 5
    np.testing.assert_array_equal(kept1, kept2)  # resume re-applies identically
    other_seed = FaultPlan.from_spec("lost@4:0.5", seed=12).drop_scatter(
        4, schedule.copy())
    assert not np.array_equal(kept1, other_seed)


def test_delay_factor_multiplies():
    plan = FaultPlan.from_spec("delay@6:x4;delay@6:x2")
    assert plan.delay_factor(6) == 8.0
    assert plan.delay_factor(7) == 1.0


def test_delay_fault_inflates_observable_d():
    # A big transient d makes same-iteration writes invisible, which for
    # WCC shows up as extra iterations relative to the fault-free run.
    g = generators.rmat(7, 6.0, seed=2)
    base = run(WeaklyConnectedComponents(), g, mode="nondeterministic",
               threads=4, seed=0, delay=1.0, jitter=0.0)
    slow = run(WeaklyConnectedComponents(), g, mode="nondeterministic",
               threads=4, seed=0, delay=1.0, jitter=0.0,
               faults="delay@0:x64;delay@1:x64")
    assert slow.converged
    assert slow.num_iterations >= base.num_iterations
    assert [f["kind"] for f in slow.extra["faults_fired"]].count("delay") == 2


def test_lost_update_fault_still_converges_for_recomputable_wcc():
    # Dropping scheduled tasks violates the task-generation rule; WCC's
    # minimum is recomputable, so the run may take longer but the fault
    # alone must not wedge it (remaining tasks re-trigger neighbours).
    g = generators.rmat(7, 6.0, seed=2)
    res = run(WeaklyConnectedComponents(), g, mode="nondeterministic",
              threads=4, seed=0, faults="lost@1:0.5")
    base = run(WeaklyConnectedComponents(), g, mode="nondeterministic",
               threads=4, seed=0)
    assert res.converged
    np.testing.assert_array_equal(base.state.vertex("label"),
                                  res.state.vertex("label"))


def test_torn_write_fault_mutates_one_edge_value():
    g = generators.two_vertex_conflict_graph()
    res = run(WeaklyConnectedComponents(), g, mode="sync", seed=0,
              faults="torn@0:e0", max_iterations=50)
    fired = [f for f in res.extra["faults_fired"] if f["kind"] == "torn_write"]
    assert fired and fired[0]["eid"] == 0
    assert fired[0]["torn"] != fired[0]["old"]


# ----------------------------------------------------------------------
# crash recovery and restart budget
# ----------------------------------------------------------------------
def test_crash_restart_budget_exhausted():
    from repro.robust import DegradationPolicy

    g = generators.rmat(7, 6.0, seed=2)
    with pytest.raises(ConvergenceFailure):
        run(WeaklyConnectedComponents(), g, mode="nondeterministic",
            threads=4, seed=0, faults=[Fault("crash", 1, once=False)],
            policy=DegradationPolicy(max_restarts=2, backoff_s=0.0))


def test_crash_unreachable_iteration_never_fires():
    g = generators.rmat(7, 6.0, seed=2)
    res = run(WeaklyConnectedComponents(), g, mode="nondeterministic",
              threads=4, seed=0, faults="crash@10000")
    assert res.converged
    assert res.extra["faults_fired"] == []
    assert res.extra["degradations"] == []


# ----------------------------------------------------------------------
# threads backend: worker timeout satellite
# ----------------------------------------------------------------------
class _SleepyProgram(VertexProgram):
    """Vertex 0's update wedges long enough to trip the barrier timeout."""

    def __init__(self, sleep_s: float = 5.0):
        from repro.engine.traits import (
            AlgorithmTraits,
            ConflictProfile,
            ConvergenceKind,
            Monotonicity,
        )

        self.sleep_s = sleep_s
        self.traits = AlgorithmTraits(
            name="Sleepy",
            conflict_profile=ConflictProfile.NONE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.NONE,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="test fixture",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"x": FieldSpec(np.float64, 0.0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        return {}

    def update(self, ctx: UpdateContext) -> None:
        if ctx.vid == 0:
            time.sleep(self.sleep_s)


def test_threads_worker_timeout_raises_with_diagnostic():
    g = generators.path_graph(8)
    config = EngineConfig(threads=4, worker_timeout_s=0.2)
    with pytest.raises(WorkerTimeout) as exc_info:
        ThreadsEngine().run(_SleepyProgram(sleep_s=5.0), g, config)
    exc = exc_info.value
    assert exc.iteration == 0
    assert 0 in exc.stuck  # block dispatch: vertex 0 lands on thread 0


def test_threads_worker_timeout_none_waits():
    g = generators.path_graph(8)
    config = EngineConfig(threads=4, worker_timeout_s=None)
    res = ThreadsEngine().run(_SleepyProgram(sleep_s=0.05), g, config)
    assert res.converged


def test_worker_timeout_config_validation():
    with pytest.raises(ValueError):
        EngineConfig(worker_timeout_s=0.0)
    with pytest.raises(ValueError):
        EngineConfig(worker_timeout_s=-3.0)


def test_stall_fault_trips_join_timeout_then_recovers():
    # A once-by-default stall wedges worker 0 past the barrier timeout;
    # the supervised loop restarts and the stall does not re-fire.
    g = generators.rmat(7, 6.0, seed=2)
    res = run(WeaklyConnectedComponents(), g, mode="threads", threads=4,
              seed=0, worker_timeout_s=0.2, faults="stall@0:t0:1.5")
    assert res.converged
    actions = [d["action"] for d in res.extra["degradations"]]
    assert actions == ["restart"]
    assert res.extra["degradations"][0]["cause"] == "WorkerTimeout"


# ----------------------------------------------------------------------
# chaos matrix: every engine survives every headline plan (CI chaos job)
# ----------------------------------------------------------------------
_CHAOS_PLANS = ["crash@1", "stall@1:0.01", "torn@1"]


@pytest.mark.chaos
@pytest.mark.parametrize("plan", _CHAOS_PLANS)
@pytest.mark.parametrize("mode", [
    "sync", "deterministic", "chromatic", "nondeterministic",
    "pure-async", "threads",
])
def test_chaos_engine_matrix(mode, plan):
    g = generators.rmat(8, 8.0, seed=3)
    res = run(WeaklyConnectedComponents(), g, mode=mode, threads=4, seed=0,
              faults=plan)
    assert res.converged
    # crash plans that fired must have been recovered by a restart
    fired = {f["kind"] for f in res.extra["faults_fired"]}
    if "crash" in fired:
        assert any(d["action"] == "restart"
                   for d in res.extra["degradations"])


@pytest.mark.chaos
def test_chaos_vectorized_fast_path_crash():
    g = generators.rmat(8, 8.0, seed=3)
    base = run(PageRank(epsilon=1e-3), g, mode="nondeterministic",
               threads=4, seed=0, vectorized=True)
    res = run(PageRank(epsilon=1e-3), g, mode="nondeterministic",
              threads=4, seed=0, vectorized=True, faults="crash@2")
    assert res.converged
    np.testing.assert_array_equal(base.state.vertex("rank"),
                                  res.state.vertex("rank"))


def test_crash_recovery_is_bit_identical_nondet():
    g = generators.rmat(7, 6.0, seed=2)
    base = run(PageRank(epsilon=1e-3), g, mode="nondeterministic",
               threads=4, seed=0)
    res = run(PageRank(epsilon=1e-3), g, mode="nondeterministic",
              threads=4, seed=0, faults="crash@3")
    assert res.converged
    np.testing.assert_array_equal(base.state.vertex("rank"),
                                  res.state.vertex("rank"))
    assert res.extra["faults_fired"] == [
        {"kind": "crash", "iteration": 3, "thread": None}]
