"""Convergence watchdog: Theorem-2 oscillation, stall, deadline, fallback.

The headline scenario is the acceptance criterion of the robustness PR:
:class:`~repro.algorithms.ConflictColoring` — the minimal enumeration
computation of Theorem 2's boundary — provably cycles with period 2
under ∥-ordered updates, so without a watchdog every nondeterministic
run exhausts ``max_iterations``.  With the watchdog armed, the
oscillation detector recognizes the repeating barrier digest within a
few iterations, degrades to a deterministic engine, and the run
terminates with a correct proper 2-coloring plus a recorded
``degradation`` event.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.algorithms import ConflictColoring, WeaklyConnectedComponents
from repro.engine import run
from repro.graph import DiGraph, generators
from repro.robust import (
    ConvergenceFailure,
    ConvergenceWatchdog,
    DegradationPolicy,
    WatchdogAlarm,
    state_digest,
)


def matching_graph(k: int) -> DiGraph:
    """A perfect matching of ``k`` disjoint undirected edges."""
    src = np.arange(2 * k)
    dst = src ^ 1  # 0<->1, 2<->3, ...
    return DiGraph(2 * k, src, dst)


#: Jitter-free two-thread config under which both endpoints of every
#: matching edge update ∥-ordered — the provable Theorem-2 cycle.
#: Round-robin dispatch puts vertices 2i and 2i+1 on different threads
#: (block dispatch would pair them on one thread, whose in-order
#: execution is sequential and therefore converges).
from repro.engine import DispatchPolicy  # noqa: E402

_OSC_CONFIG = dict(threads=2, seed=0, jitter=0.0, delay=2.0,
                   dispatch=DispatchPolicy.ROUND_ROBIN)


# ----------------------------------------------------------------------
# the oscillator itself
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["deterministic", "chromatic"])
def test_conflict_coloring_converges_sequentially(mode):
    g = matching_graph(4)
    res = run(ConflictColoring(), g, mode=mode, threads=2, seed=0)
    assert res.converged
    colors = res.state.vertex("color")
    assert np.all(colors[0::2] != colors[1::2])  # proper 2-coloring


@pytest.mark.parametrize("mode", ["sync", "nondeterministic"])
def test_conflict_coloring_cycles_forever_parallel(mode):
    # Without a watchdog, the run burns its entire iteration budget:
    # the enumeration recreates the WW conflict every barrier.
    g = matching_graph(4)
    res = run(ConflictColoring(), g, mode=mode, max_iterations=40,
              **_OSC_CONFIG)
    assert not res.converged
    assert res.num_iterations == 40


def test_oscillation_is_exact_period_two():
    g = matching_graph(2)
    digests = []

    def observer(iteration, state, next_schedule):
        digests.append(state_digest(
            state, np.fromiter(sorted(next_schedule), dtype=np.int64)))

    run(ConflictColoring(), g, mode="sync", max_iterations=8,
        observer=observer, **_OSC_CONFIG)
    assert digests[0] == digests[2] == digests[4]
    assert digests[1] == digests[3] == digests[5]
    assert digests[0] != digests[1]


# ----------------------------------------------------------------------
# watchdog catches it and degrades to a deterministic engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["sync", "nondeterministic"])
@pytest.mark.parametrize("fallback", ["chromatic", "deterministic"])
def test_watchdog_fires_within_one_period_and_falls_back(mode, fallback):
    g = matching_graph(4)
    res = run(ConflictColoring(), g, mode=mode, max_iterations=40,
              watchdog=ConvergenceWatchdog(),
              policy=DegradationPolicy(fallback_mode=fallback),
              **_OSC_CONFIG)
    assert res.converged
    assert res.mode == fallback
    colors = res.state.vertex("color")
    assert np.all(colors[0::2] != colors[1::2])
    events = res.extra["degradations"]
    assert len(events) == 1
    event = events[0]
    assert event["cause"] == "watchdog"
    assert event["kind"] == "oscillation"
    assert event["action"] == f"fallback:{fallback}"
    # period-2 cycle: first recurrence is at iteration 2 (vs iteration 0)
    assert event["iteration"] == 2


def test_watchdog_escalates_atomicity_before_falling_back():
    from repro.engine.atomicity import AtomicityPolicy

    g = matching_graph(4)
    res = run(ConflictColoring(), g, mode="nondeterministic",
              max_iterations=40, atomicity=AtomicityPolicy.ATOMIC_RELAXED,
              watchdog=ConvergenceWatchdog(),
              policy=DegradationPolicy(), **_OSC_CONFIG)
    assert res.converged
    actions = [d["action"] for d in res.extra["degradations"]]
    # locks don't fix a semantic oscillation, so the escalation is
    # followed by the engine fallback — in that order
    assert actions == ["escalate-atomicity", "fallback:chromatic"]


def test_watchdog_gives_up_when_fallback_also_alarms():
    # An unreachable deadline alarms in every engine, including the
    # fallback: the policy runs out of avenues and surfaces the failure.
    g = matching_graph(4)
    wd = ConvergenceWatchdog(oscillation=True)
    with pytest.raises(ConvergenceFailure):
        run(ConflictColoring(), g, mode="sync", max_iterations=40,
            watchdog=wd,
            policy=DegradationPolicy(fallback_mode="sync"),
            **_OSC_CONFIG)
    assert wd.deadline_s is None  # sanity: it was the oscillator both times


def test_healthy_run_never_trips_the_watchdog():
    g = generators.rmat(7, 6.0, seed=2)
    base = run(WeaklyConnectedComponents(), g, mode="nondeterministic",
               threads=4, seed=0)
    res = run(WeaklyConnectedComponents(), g, mode="nondeterministic",
              threads=4, seed=0, watchdog=ConvergenceWatchdog())
    assert res.converged
    assert res.extra["degradations"] == []
    np.testing.assert_array_equal(base.state.vertex("label"),
                                  res.state.vertex("label"))


# ----------------------------------------------------------------------
# stall and deadline verdict units
# ----------------------------------------------------------------------
def test_stall_verdict_after_window():
    wd = ConvergenceWatchdog(oscillation=False, stall_window=3)
    assert wd.observe(0, frontier_size=10) is None
    assert wd.observe(1, frontier_size=10) is None
    assert wd.observe(2, frontier_size=10) is None
    verdict = wd.observe(3, frontier_size=10)
    assert verdict is not None and verdict.kind == "stall"
    wd.reset()
    assert wd.observe(0, frontier_size=10) is None  # history forgotten


def test_stall_window_resets_on_improvement():
    wd = ConvergenceWatchdog(oscillation=False, stall_window=2)
    assert wd.observe(0, frontier_size=10) is None
    assert wd.observe(1, frontier_size=10) is None
    assert wd.observe(2, frontier_size=9) is None  # improvement
    assert wd.observe(3, frontier_size=9) is None
    assert wd.observe(4, frontier_size=9).kind == "stall"


def test_deadline_verdict():
    wd = ConvergenceWatchdog(oscillation=False, deadline_s=0.01)
    assert wd.observe(0, frontier_size=5) is None
    time.sleep(0.03)
    verdict = wd.observe(1, frontier_size=5)
    assert verdict is not None and verdict.kind == "deadline"


def test_deadline_kwarg_routes_through_runner():
    g = matching_graph(4)
    # the oscillator never converges, so the deadline must trip; with
    # fallback available the run still finishes deterministically
    res = run(ConflictColoring(), g, mode="sync", max_iterations=200_000,
              deadline_s=0.05, **_OSC_CONFIG)
    assert res.converged
    kinds = [d["kind"] for d in res.extra["degradations"]]
    assert kinds == ["deadline"]


def test_watchdog_alarm_message_carries_verdict():
    from repro.robust import WatchdogVerdict

    alarm = WatchdogAlarm(WatchdogVerdict("oscillation", 7, "period 2"))
    assert "oscillation" in str(alarm)
    assert "7" in str(alarm)
    assert alarm.verdict.detail == "period 2"


def test_watchdog_validation():
    with pytest.raises(ValueError):
        ConvergenceWatchdog(history=0)
    with pytest.raises(ValueError):
        ConvergenceWatchdog(stall_window=0)
    with pytest.raises(ValueError):
        ConvergenceWatchdog(deadline_s=0.0)
    with pytest.raises(ValueError):
        DegradationPolicy(fallback_mode="nondeterministic")
    with pytest.raises(ValueError):
        DegradationPolicy(max_restarts=-1)


def test_degradation_policy_backoff_caps():
    policy = DegradationPolicy(backoff_s=0.1, max_backoff_s=0.3)
    assert policy.backoff_for(1) == pytest.approx(0.1)
    assert policy.backoff_for(2) == pytest.approx(0.2)
    assert policy.backoff_for(5) == pytest.approx(0.3)  # capped


def test_state_digest_sensitivity():
    g = matching_graph(2)
    prog = ConflictColoring()
    state = prog.make_state(g)
    ids = np.array([0, 1], dtype=np.int64)
    d0 = state_digest(state, ids)
    assert d0 == state_digest(state, ids)
    state.vertex("color")[0] = 1.0
    assert state_digest(state, ids) != d0
    state.vertex("color")[0] = 0.0
    assert state_digest(state, np.array([0], dtype=np.int64)) != d0
