"""Chaos: SIGKILL the whole service mid-job; nothing may be lost.

The PR's headline acceptance test.  A real ``repro serve`` subprocess
runs a throttled, recorded PageRank job; we ``kill -9`` the *service
process* (not a worker) between barriers, restart it on the same data
directory, and require:

* the job finishes with ``resumed: true``;
* its state digest and conflict counters are byte-identical to an
  uninterrupted solo run of the same spec;
* the killed attempt's recorder trace stitched to the resumed attempt's
  (``repro trace stitch``) is event-identical to the uninterrupted
  run's provenance trace;
* no ``/dev/shm`` segment and no scratch tmp file survives — the
  restart sweeps the dead incarnation's resources;
* a second kill landing mid-checkpoint-write (simulated torn journal
  tail + checkpoint tmp litter) is tolerated, not fatal.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import cli
from repro.algorithms import PageRank
from repro.engine import EngineConfig, run
from repro.graph.datasets import load_dataset
from repro.obs import read_trace
from repro.service import ServiceClient
from repro.service.scheduler import _service_namespace

pytestmark = pytest.mark.chaos

SHM_DIR = "/dev/shm"


def _shm_segments(namespace: str) -> list[str]:
    if not os.path.isdir(SHM_DIR):
        return []
    return glob.glob(os.path.join(SHM_DIR, f"repro-pool-{namespace}-*"))


def _start_service(data_dir, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.path.dirname(__file__), "..", "src"),
                      env.get("PYTHONPATH", "")]))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--data-dir",
         str(data_dir), "--port", "0", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    # the first line announces the ephemeral port
    deadline = time.monotonic() + 60
    line = proc.stdout.readline()
    while "listening on" not in line:
        assert time.monotonic() < deadline and proc.poll() is None, \
            f"service did not come up: {line!r}"
        line = proc.stdout.readline()
    url = line.rsplit(" ", 1)[-1].strip()
    return proc, ServiceClient(url)


def _wait_for_barrier(client, job_id, min_iteration=1, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.status(job_id)
        if (status["state"] == "running"
                and status["iteration"] >= min_iteration
                and status["checkpoint_iteration"] is not None):
            return status
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} never reached barrier "
                       f"{min_iteration} with a checkpoint")


JOB = {
    "algorithm": "PageRank",
    "graph": {"dataset": "web-google-mini", "scale": 9, "seed": 7},
    "config": {"seed": 4, "threads": 2},
    "record": "conflicts",
    "throttle_s": 0.25,
}


def test_sigkill_service_mid_job_resumes_bit_identically(tmp_path):
    data_dir = tmp_path / "svc"
    namespace = _service_namespace(str(data_dir))

    proc, client = _start_service(data_dir)
    try:
        jid = client.submit(JOB)
        _wait_for_barrier(client, jid, min_iteration=1)
    finally:
        # the kill under test: the whole service, no warning, mid-job
        proc.kill()
        proc.wait(timeout=30)

    proc2, client2 = _start_service(data_dir)
    try:
        status = client2.wait(jid, timeout=120)
        assert status["state"] == "done"
        assert status["resumed"], "recovery lost the in-flight flag"
        result = client2.result(jid)
        assert result["resumed"]

        # --- byte-identity against the uninterrupted run -------------
        graph = load_dataset("web-google-mini", scale=9, seed=7)
        solo = run(PageRank(), graph, mode="nondeterministic",
                   config=EngineConfig(seed=4, threads=2))
        arr = np.ascontiguousarray(solo.result())
        assert result["state_sha256"] == hashlib.sha256(
            arr.tobytes()).hexdigest()
        assert result["conflicts"] == solo.conflicts.summary()

        # --- stitched recorder trace == uninterrupted provenance -----
        jdir = os.path.join(data_dir, "jobs", jid)
        killed = os.path.join(jdir, "record-1.jsonl")
        resumed = os.path.join(jdir, "record-2.jsonl")
        assert os.path.exists(killed) and os.path.exists(resumed)
        stitched_path = str(tmp_path / "stitched.jsonl")
        assert cli.main(["trace", "stitch", killed, resumed,
                         "-o", stitched_path]) == 0
        solo_trace = str(tmp_path / "solo.jsonl")
        from repro.obs.recorder import Recorder

        recorder = Recorder(policy="conflicts", trace_path=solo_trace)
        run(PageRank(), graph, mode="nondeterministic",
            config=EngineConfig(seed=4, threads=2), record=recorder)

        def provenance(path):
            return [r for r in read_trace(path)
                    if r.get("type") == "provenance"]

        assert provenance(stitched_path) == provenance(solo_trace)
    finally:
        proc2.send_signal(signal.SIGTERM)
        try:
            proc2.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc2.kill()
            proc2.wait(timeout=30)

    # --- resource hygiene: nothing survives the two incarnations -----
    assert _shm_segments(namespace) == [], "leaked /dev/shm segment"
    leftovers = [f for f in glob.glob(os.path.join(data_dir, "jobs",
                                                   "*", "*"))
                 if ".tmp." in os.path.basename(f)]
    assert leftovers == [], f"leaked scratch tmp files: {leftovers}"


def test_restart_tolerates_torn_journal_and_checkpoint_litter(tmp_path):
    """A kill mid-append (torn journal line) plus mid-checkpoint litter
    (stray ``*.tmp.<pid>``) must be swept, not fatal."""
    data_dir = tmp_path / "svc"
    proc, client = _start_service(data_dir)
    try:
        jid = client.submit(JOB)
        _wait_for_barrier(client, jid, min_iteration=1)
    finally:
        proc.kill()
        proc.wait(timeout=30)

    # simulate both mid-write kill signatures
    journal_path = os.path.join(data_dir, "journal", "journal.jsonl")
    with open(journal_path, "a", encoding="utf-8") as fh:
        fh.write('{"seq":999999,"type":"barr')
    jdir = os.path.join(data_dir, "jobs", jid)
    litter = os.path.join(jdir, "state.ckpt.tmp.424242")
    open(litter, "w").close()

    proc2, client2 = _start_service(data_dir)
    try:
        status = client2.wait(jid, timeout=120)
        assert status["state"] == "done" and status["resumed"]
        assert not os.path.exists(litter), "checkpoint litter not swept"
        # the torn tail was journaled as a recovery fact, not an error
        records = read_trace(journal_path)
        assert any(r.get("type") == "recovered" for r in records) or \
            os.path.exists(os.path.join(data_dir, "journal",
                                        "snapshot.json"))
    finally:
        proc2.send_signal(signal.SIGTERM)
        try:
            proc2.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc2.kill()
            proc2.wait(timeout=30)
