"""HTTP surface: routes, error mapping, client wrappers, CLI client.

Everything runs against an in-process ``ThreadingHTTPServer`` on an
ephemeral port — no subprocesses here (the cross-process chaos story
lives in ``test_service_crash.py``).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import cli
from repro.service import GraphService, JobState, ServiceClient, ServiceError
from repro.service.http import make_server

WEB_SPEC = {"dataset": "web-google-mini", "scale": 8, "seed": 7}


@pytest.fixture
def live(tmp_path):
    """(service, client) against a started pool + bound server."""
    svc = GraphService(tmp_path / "svc", max_concurrent=2)
    svc.graphs.register("web", WEB_SPEC)
    svc.start()
    server = make_server(svc)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield svc, ServiceClient(f"http://{host}:{port}")
    server.shutdown()
    server.server_close()
    svc.shutdown(drain=True, timeout=60)


def test_healthz_and_metrics(live):
    _, client = live
    health = client.health()
    assert health["ok"] and health["graphs"] == ["web"]
    jid = client.submit({"algorithm": "WCC", "graph": "web"})
    client.wait(jid, timeout=60)
    text = client.metrics()
    assert "service_jobs_submitted_total 1" in text
    assert 'service_jobs_finished_total{status="done"} 1' in text


def test_submit_wait_result_trace(live):
    _, client = live
    jid = client.submit({"algorithm": "WCC", "graph": "web",
                         "config": {"seed": 3}})
    status = client.wait(jid, timeout=60)
    assert status["state"] == JobState.DONE
    result = client.result(jid)
    assert result["converged"] and len(result["state_sha256"]) == 64
    trace = client.trace(jid)
    assert any(r.get("type") == "run_end" for r in trace)
    assert jid in [j["job_id"] for j in client.jobs()]


def test_cancel_over_http(live):
    _, client = live
    jid = client.submit({"algorithm": "PageRank", "graph": "web",
                         "throttle_s": 0.2})
    status = client.cancel(jid)
    assert status["cancel_requested"]
    final = client.wait(jid, timeout=60)
    assert final["state"] == JobState.CANCELLED


def test_graph_registration_over_http(live, tmp_path):
    _, client = live
    client.register_graph("tiny", {"dataset": "web-google-mini",
                                   "scale": 6, "seed": 1})
    assert "tiny" in client.graphs()
    jid = client.submit({"algorithm": "WCC", "graph": "tiny"})
    assert client.wait(jid, timeout=60)["state"] == JobState.DONE


def test_error_mapping(live):
    _, client = live
    with pytest.raises(ServiceError) as exc:
        client.status("j9999-beef")
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        client.submit({"algorithm": "NoSuch", "graph": "web"})
    assert exc.value.status == 400
    jid = client.submit({"algorithm": "PageRank", "graph": "web",
                         "throttle_s": 0.2})
    with pytest.raises(ServiceError) as exc:
        client.result(jid)  # not done yet
    assert exc.value.status == 409
    client.cancel(jid)
    client.wait(jid, timeout=60)
    with pytest.raises(ServiceError) as exc:
        client._call("GET", "/api/nothing/here")
    assert exc.value.status == 404


def test_admission_control_maps_to_429(tmp_path):
    svc = GraphService(tmp_path / "svc", max_queue=1)  # pool NOT started
    svc.graphs.register("web", WEB_SPEC)
    server = make_server(svc)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    client.submit({"algorithm": "WCC", "graph": "web"})
    with pytest.raises(ServiceError) as exc:
        client.submit({"algorithm": "WCC", "graph": "web"})
    assert exc.value.status == 429
    server.shutdown()
    server.server_close()
    svc.journal.close()
    svc.graphs.close()


# ----------------------------------------------------------------------
# the CLI client
# ----------------------------------------------------------------------
def test_cli_client_round_trip(live, capsys):
    _, client = live
    url = client.url
    rc = cli.main(["client", "--url", url, "graphs", "--register", "tiny2",
                   "--spec", json.dumps({"dataset": "web-google-mini",
                                         "scale": 6, "seed": 1})])
    assert rc == 0
    assert "tiny2" in capsys.readouterr().out

    rc = cli.main(["client", "--url", url, "submit", "WCC",
                   "--graph", "tiny2", "--run-seed", "3", "--wait"])
    out = capsys.readouterr().out
    assert rc == 0
    jid = out.splitlines()[0].strip()
    assert '"state": "done"' in out

    assert cli.main(["client", "--url", url, "status", jid]) == 0
    assert f'"job_id": "{jid}"' in capsys.readouterr().out
    assert cli.main(["client", "--url", url, "result", jid]) == 0
    assert '"state_sha256"' in capsys.readouterr().out
    assert cli.main(["client", "--url", url, "jobs"]) == 0
    capsys.readouterr()
    assert cli.main(["client", "--url", url, "watch", jid]) == 0
    assert "done" in capsys.readouterr().out


def test_cli_client_unreachable_service_fails_cleanly(capsys):
    rc = cli.main(["client", "--url", "http://127.0.0.1:1", "jobs"])
    assert rc == 1
    assert "cannot reach" in capsys.readouterr().err


def test_gc_over_http(live):
    svc, client = live
    jid = client.submit({"algorithm": "WCC", "graph": "web"})
    client.wait(jid, timeout=60)
    out = client.gc(max_age_s=0.0)
    assert jid in out["swept"]
    assert jid not in [j["job_id"] for j in client.jobs()]
    with pytest.raises(ServiceError) as exc:
        client._call("POST", "/api/gc", {"bogus": 1})
    assert exc.value.status == 400
