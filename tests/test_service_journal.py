"""WAL job journal: durability contract, torn tails, compaction.

The journal is the reason no job outcome is lost to a service crash;
these tests pin its three promises — append = durable (fsync of data
AND, via compaction, the parent directory), torn final lines are facts
not errors, and snapshot compaction replays to the same state even when
a crash lands between snapshot rename and journal truncation.
"""

from __future__ import annotations

import json
import os
import stat

import pytest

from repro.service import Job, JobJournal, JobSpec, JournalError
from repro.service.jobs import JobState, job_table_state, reduce_records


def _spec(n: int = 1) -> dict:
    return JobSpec(job_id=f"j{n:04d}-00aa", algorithm="WCC",
                   graph="web").to_dict()


# ----------------------------------------------------------------------
# append / replay round trip
# ----------------------------------------------------------------------
def test_append_replay_round_trip(tmp_path):
    with JobJournal(tmp_path / "j") as journal:
        journal.append("submit", job="j0001-00aa", spec=_spec())
        journal.append("start", job="j0001-00aa", attempt=1, resumed=False)
        journal.append("barrier", job="j0001-00aa", iteration=0,
                       checkpoint_iteration=1)
    journal = JobJournal(tmp_path / "j")
    snap, tail = journal.replay()
    assert snap is None
    assert [r["type"] for r in tail] == ["submit", "start", "barrier"]
    assert [r["seq"] for r in tail] == [1, 2, 3]
    # seq high-water mark survives reopen: new appends keep ascending
    rec = journal.append("finish", job="j0001-00aa", status="done")
    assert rec["seq"] == 4


def test_append_is_fsynced(tmp_path, monkeypatch):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd),
                                                 real_fsync(fd))[1])
    journal = JobJournal(tmp_path / "j")
    journal.append("submit", job="j0001-00aa", spec=_spec())
    assert synced, "append returned without fsync"
    journal.close()
    journal_no_sync = JobJournal(tmp_path / "j2", fsync=False)
    synced.clear()
    journal_no_sync.append("submit", job="j0001-00aa", spec=_spec())
    assert synced == []
    journal_no_sync.close()


def test_torn_tail_is_dropped_and_flagged(tmp_path):
    journal = JobJournal(tmp_path / "j")
    journal.append("submit", job="j0001-00aa", spec=_spec())
    journal.append("start", job="j0001-00aa", attempt=1)
    journal.close()
    # SIGKILL mid-append: the final line is half a record
    with open(journal.journal_path, "a", encoding="utf-8") as fh:
        fh.write('{"seq":3,"type":"barr')
    reopened = JobJournal(tmp_path / "j")
    snap, tail = reopened.replay()
    assert reopened.torn_tail
    assert [r["type"] for r in tail] == ["submit", "start"]
    # the torn record's seq was never durable, so seq 3 is reusable
    assert reopened.append("finish", job="j0001-00aa",
                           status="failed")["seq"] == 3


def test_mid_file_corruption_is_an_error(tmp_path):
    journal = JobJournal(tmp_path / "j")
    journal.append("submit", job="j0001-00aa", spec=_spec())
    journal.close()
    with open(journal.journal_path, "a", encoding="utf-8") as fh:
        fh.write("not json at all\n")
        fh.write(json.dumps({"seq": 3, "type": "finish"}) + "\n")
    with pytest.raises(JournalError):
        JobJournal(tmp_path / "j").replay()


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------
def _build_table(records):
    jobs: dict[str, Job] = {}
    reduce_records(jobs, records)
    return jobs


def test_compact_then_replay_equals_pure_replay(tmp_path):
    journal = JobJournal(tmp_path / "j")
    journal.append("submit", job="j0001-00aa", spec=_spec(1))
    journal.append("start", job="j0001-00aa", attempt=1)
    journal.append("finish", job="j0001-00aa", status="done",
                   result={"iterations": 3})
    journal.append("submit", job="j0002-00aa", spec=_spec(2))
    _, tail = journal.replay()
    jobs = _build_table(tail)
    journal.compact(job_table_state(jobs))
    # post-compaction appends land in the (now empty) tail
    journal.append("start", job="j0002-00aa", attempt=1)
    journal.close()

    reopened = JobJournal(tmp_path / "j")
    snap, tail = reopened.replay()
    assert snap is not None and snap["seq"] == 4
    assert [r["type"] for r in tail] == ["start"]
    rebuilt = {jid: Job.from_state_dict(d)
               for jid, d in snap["state"].items()}
    reduce_records(rebuilt, tail)
    assert rebuilt["j0001-00aa"].state == JobState.DONE
    assert rebuilt["j0001-00aa"].result == {"iterations": 3}
    assert rebuilt["j0002-00aa"].state == JobState.RUNNING


def test_crash_between_snapshot_and_truncate_replays_once(tmp_path):
    """Snapshot durable + stale tail: seq filtering deduplicates."""
    journal = JobJournal(tmp_path / "j")
    journal.append("submit", job="j0001-00aa", spec=_spec())
    journal.append("start", job="j0001-00aa", attempt=1)
    _, tail = journal.replay()
    stale_tail = open(journal.journal_path, encoding="utf-8").read()
    journal.compact(job_table_state(_build_table(tail)))
    # simulate the crash: restore the pre-truncation journal alongside
    # the new snapshot
    with open(journal.journal_path, "w", encoding="utf-8") as fh:
        fh.write(stale_tail)
    journal.close()

    reopened = JobJournal(tmp_path / "j")
    snap, tail = reopened.replay()
    assert snap["seq"] == 2
    assert tail == []  # every stale record filtered by seq
    assert reopened.append("finish", job="j0001-00aa",
                           status="done")["seq"] == 3


def test_compact_is_atomic_and_directory_fsynced(tmp_path, monkeypatch):
    """The snapshot rename must be durable-ordered: file fsync, rename,
    then an fsync of the *parent directory* (without it, power loss can
    roll back the rename the truncated journal relies on)."""
    fsynced_dirs = []
    real_fsync = os.fsync

    def spy(fd):
        if stat.S_ISDIR(os.fstat(fd).st_mode):
            fsynced_dirs.append(fd)
        return real_fsync(fd)

    monkeypatch.setattr(os, "fsync", spy)
    journal = JobJournal(tmp_path / "j")
    journal.append("submit", job="j0001-00aa", spec=_spec())
    journal.compact({})
    assert fsynced_dirs, "compact() never fsynced the journal directory"
    assert not [n for n in os.listdir(journal.directory) if ".tmp." in n]
    journal.close()


def test_sweep_tmp_files(tmp_path):
    journal = JobJournal(tmp_path / "j")
    litter = os.path.join(journal.directory, "snapshot.json.tmp.12345")
    open(litter, "w").close()
    assert journal.sweep_tmp_files() == ["snapshot.json.tmp.12345"]
    assert not os.path.exists(litter)
    journal.close()


def test_snapshot_version_guard(tmp_path):
    journal = JobJournal(tmp_path / "j")
    journal.compact({})
    journal.close()
    with open(journal.snapshot_path, "w", encoding="utf-8") as fh:
        json.dump({"version": 99, "seq": 1, "state": {}}, fh)
    with pytest.raises(JournalError):
        JobJournal(tmp_path / "j").replay()
