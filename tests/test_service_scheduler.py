"""Supervisor pool: submit/run/result, concurrency isolation, drain.

The acceptance-criterion test here is byte-for-byte isolation: two jobs
running *concurrently* against the same standing graph must each equal
their solo run exactly — same state bytes, same conflict counters —
because each job gets its own RNG stream (config seed), shm namespace,
and scratch directory.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time

import numpy as np
import pytest

from repro.algorithms import PageRank, WeaklyConnectedComponents
from repro.engine import EngineConfig, run
from repro.service import GraphService, JobState, ServiceBusy
from repro.service.scheduler import resolve_algorithm

WEB_SPEC = {"dataset": "web-google-mini", "scale": 9, "seed": 7}


@pytest.fixture
def service(tmp_path):
    svc = GraphService(tmp_path / "svc", max_concurrent=2)
    svc.graphs.register("web", WEB_SPEC)
    svc.start()
    yield svc
    svc.shutdown(drain=True, timeout=60)


def _wait(svc, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = svc.status(job_id)
        if status["state"] in JobState.TERMINAL:
            return status
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} still {svc.status(job_id)['state']}")


def _digest(result) -> tuple[str, dict]:
    arr = np.ascontiguousarray(result.result())
    return hashlib.sha256(arr.tobytes()).hexdigest(), result.conflicts.summary()


# ----------------------------------------------------------------------
# basic lifecycle
# ----------------------------------------------------------------------
def test_submit_run_result(service):
    jid = service.submit({"algorithm": "WCC", "graph": "web",
                          "config": {"seed": 3}})
    status = _wait(service, jid)
    assert status["state"] == JobState.DONE
    result = service.result(jid)
    assert result["converged"] and result["iterations"] >= 1
    assert not result["resumed"]
    # the persisted array matches the digest the journal recorded
    arr = service.result_array(jid)
    assert hashlib.sha256(
        np.ascontiguousarray(arr).tobytes()).hexdigest() == \
        result["state_sha256"]
    # telemetry trace was written under the job's scratch dir
    assert os.path.exists(os.path.join(service.job_dir(jid),
                                       "trace-1.jsonl"))


def test_job_matches_solo_run_byte_for_byte(service):
    jid = service.submit({"algorithm": "PageRank", "graph": "web",
                          "config": {"seed": 5, "threads": 3}})
    status = _wait(service, jid)
    assert status["state"] == JobState.DONE
    graph = service.graphs.get("web")
    solo = run(PageRank(), graph, mode="nondeterministic",
               config=EngineConfig(seed=5, threads=3))
    digest, conflicts = _digest(solo)
    result = service.result(jid)
    assert result["state_sha256"] == digest
    assert result["conflicts"] == conflicts


def test_two_concurrent_jobs_match_their_solo_runs(service):
    """Acceptance criterion: concurrent jobs on one standing graph are
    bit-isolated — each equals its solo run byte-for-byte."""
    specs = [
        ("WCC", WeaklyConnectedComponents, {"seed": 11, "threads": 2}),
        ("PageRank", PageRank, {"seed": 12, "threads": 3}),
    ]
    # throttle both so their executions genuinely overlap
    jids = [service.submit({"algorithm": name, "graph": "web",
                            "config": cfg, "throttle_s": 0.05})
            for name, _, cfg in specs]
    statuses = [_wait(service, jid) for jid in jids]
    assert all(s["state"] == JobState.DONE for s in statuses)
    graph = service.graphs.get("web")
    for jid, (name, factory, cfg) in zip(jids, specs):
        solo = run(factory(), graph, mode="nondeterministic",
                   config=EngineConfig(**cfg))
        digest, conflicts = _digest(solo)
        result = service.result(jid)
        assert result["state_sha256"] == digest, f"{name} diverged"
        assert result["conflicts"] == conflicts, f"{name} conflicts diverged"


def test_inline_graph_spec(service):
    jid = service.submit({"algorithm": "WCC",
                          "graph": {"dataset": "web-google-mini",
                                    "scale": 8, "seed": 2},
                          "config": {"seed": 1}})
    assert _wait(service, jid)["state"] == JobState.DONE


# ----------------------------------------------------------------------
# admission control and validation
# ----------------------------------------------------------------------
def test_submit_rejects_bad_specs(service):
    with pytest.raises(ValueError, match="unknown algorithm"):
        service.submit({"algorithm": "NoSuch", "graph": "web"})
    with pytest.raises(KeyError, match="no graph registered"):
        service.submit({"algorithm": "WCC", "graph": "nope"})
    with pytest.raises(ValueError, match="config key"):
        service.submit({"algorithm": "WCC", "graph": "web",
                        "config": {"evil": 1}})
    with pytest.raises(ValueError, match="pure-async"):
        service.submit({"algorithm": "WCC", "graph": "web",
                        "mode": "pure-async"})
    with pytest.raises(ValueError, match="job-spec field"):
        service.submit({"algorithm": "WCC", "graph": "web",
                        "bogus_field": True})


def test_admission_control(tmp_path):
    svc = GraphService(tmp_path / "svc", max_concurrent=1, max_queue=2)
    svc.graphs.register("web", WEB_SPEC)
    # not started: nothing drains the queue, so the limit is hit cleanly
    svc.submit({"algorithm": "WCC", "graph": "web"})
    svc.submit({"algorithm": "WCC", "graph": "web"})
    with pytest.raises(ServiceBusy):
        svc.submit({"algorithm": "WCC", "graph": "web"})
    svc.journal.close()
    svc.graphs.close()


def test_resolve_algorithm_matches_cli_table():
    assert resolve_algorithm("WCC") is not None
    with pytest.raises(ValueError):
        resolve_algorithm("definitely-not-an-algorithm")


# ----------------------------------------------------------------------
# cancel and drain
# ----------------------------------------------------------------------
def test_cancel_running_job_stops_at_barrier(service):
    jid = service.submit({"algorithm": "PageRank", "graph": "web",
                          "config": {"seed": 0}, "throttle_s": 0.2})
    deadline = time.monotonic() + 30
    while service.status(jid)["iteration"] < 0:
        assert time.monotonic() < deadline, "job never reached a barrier"
        time.sleep(0.02)
    service.cancel(jid)
    status = _wait(service, jid)
    assert status["state"] == JobState.CANCELLED
    assert status["cancel_requested"]


def test_cancel_pending_job_is_immediate(tmp_path):
    svc = GraphService(tmp_path / "svc")  # not started: stays pending
    svc.graphs.register("web", WEB_SPEC)
    jid = svc.submit({"algorithm": "WCC", "graph": "web"})
    assert svc.cancel(jid)["state"] == JobState.CANCELLED
    svc.journal.close()
    svc.graphs.close()


def test_drain_then_restart_resumes_bit_identically(tmp_path):
    """Graceful shutdown = crash without the mess: the drained job stays
    ``running`` in the journal and the next incarnation finishes it from
    its checkpoint with a byte-identical outcome."""
    data_dir = tmp_path / "svc"
    svc = GraphService(data_dir, max_concurrent=1)
    svc.graphs.register("web", WEB_SPEC)
    svc.start()
    jid = svc.submit({"algorithm": "PageRank", "graph": "web",
                      "config": {"seed": 9, "threads": 2},
                      "throttle_s": 0.15})
    deadline = time.monotonic() + 30
    while svc.status(jid)["checkpoint_iteration"] is None:
        assert time.monotonic() < deadline, "no checkpoint before drain"
        time.sleep(0.02)
    svc.shutdown(drain=True, timeout=60)
    assert svc.status(jid)["state"] == JobState.RUNNING  # not lost

    svc2 = GraphService(data_dir, max_concurrent=1)
    svc2.start()
    try:
        assert svc2.status(jid)["resumed"]
        status = _wait(svc2, jid)
        assert status["state"] == JobState.DONE
        result = svc2.result(jid)
        assert result["resumed"]
        solo = run(PageRank(), svc2.graphs.get("web"),
                   mode="nondeterministic",
                   config=EngineConfig(seed=9, threads=2))
        digest, conflicts = _digest(solo)
        assert result["state_sha256"] == digest
        assert result["conflicts"] == conflicts
    finally:
        svc2.shutdown(drain=True, timeout=60)


# ----------------------------------------------------------------------
# recovery bookkeeping
# ----------------------------------------------------------------------
def test_recovery_finishes_cancel_requested_jobs(tmp_path):
    svc = GraphService(tmp_path / "svc")
    svc.graphs.register("web", WEB_SPEC)
    jid = svc.submit({"algorithm": "WCC", "graph": "web"})
    # simulate: cancel journaled, then the service died before acting
    svc.journal.append("start", job=jid, attempt=1)
    svc.journal.append("cancel", job=jid)
    svc.journal.close()
    svc.graphs.close()

    svc2 = GraphService(tmp_path / "svc")
    svc2.recover()
    assert svc2.jobs[jid].state == JobState.CANCELLED
    svc2.journal.close()
    svc2.graphs.close()


def test_recovery_sweeps_job_scratch_tmp_files(tmp_path):
    svc = GraphService(tmp_path / "svc")
    svc.graphs.register("web", WEB_SPEC)
    jid = svc.submit({"algorithm": "WCC", "graph": "web"})
    jdir = svc.job_dir(jid)
    os.makedirs(jdir, exist_ok=True)
    litter = os.path.join(jdir, "state.ckpt.tmp.999")
    open(litter, "w").close()
    svc.journal.close()
    svc.graphs.close()

    svc2 = GraphService(tmp_path / "svc")
    svc2.recover()
    assert not os.path.exists(litter)
    svc2.journal.close()
    svc2.graphs.close()


def test_job_ids_are_sequential_and_unique(tmp_path):
    svc = GraphService(tmp_path / "svc")
    svc.graphs.register("web", WEB_SPEC)
    a = svc.submit({"algorithm": "WCC", "graph": "web"})
    b = svc.submit({"algorithm": "WCC", "graph": "web"})
    assert a != b and a.startswith("j0001-") and b.startswith("j0002-")
    svc.journal.close()
    svc.graphs.close()
    # a new incarnation continues the sequence past replayed ids
    svc2 = GraphService(tmp_path / "svc", max_queue=64)
    svc2.recover()
    c = svc2.submit({"algorithm": "WCC", "graph": "web"})
    assert c.startswith("j0003-")
    svc2.journal.close()
    svc2.graphs.close()


# ----------------------------------------------------------------------
# delta jobs and retention GC
# ----------------------------------------------------------------------
def test_delta_job_with_mutations(service):
    """A delta job repairs its standing result through mutation batches
    and the summary records what each repair did."""
    jid = service.submit({
        "algorithm": "PageRank", "graph": "web", "mode": "delta",
        "mutations": {"num_batches": 2, "frac": 0.01, "seed": 7},
    })
    status = _wait(service, jid)
    assert status["state"] == JobState.DONE, status.get("error")
    summary = service.result(jid)
    assert summary["delta"]["accumulation_identity"] is True
    assert len(summary["mutations"]) == 2
    for m in summary["mutations"]:
        assert m["repair_mode"] == "reseed"
    arr = service.result_array(jid)
    assert arr.shape[0] > 0 and np.all(np.isfinite(arr))


def test_delta_spec_validation():
    from repro.service.jobs import JobSpec

    with pytest.raises(ValueError, match="requires mode='delta'"):
        JobSpec.from_dict({"job_id": "j0001-abcd", "algorithm": "WCC",
                           "graph": "web", "mutations": {"num_batches": 1}})
    with pytest.raises(ValueError, match="backend=/vectorized="):
        JobSpec.from_dict({"job_id": "j0001-abcd", "algorithm": "WCC",
                           "graph": "web", "mode": "delta",
                           "backend": "process"})
    with pytest.raises(ValueError, match="fault injection"):
        JobSpec.from_dict({"job_id": "j0001-abcd", "algorithm": "WCC",
                           "graph": "web", "mode": "delta",
                           "faults": "crash@3"})
    with pytest.raises(ValueError, match="unknown mutation key"):
        JobSpec.from_dict({"job_id": "j0001-abcd", "algorithm": "WCC",
                           "graph": "web", "mode": "delta",
                           "mutations": {"frak": 0.1}})


def test_gc_sweeps_terminal_jobs(service):
    a = service.submit({"algorithm": "WCC", "graph": "web"})
    _wait(service, a)  # a must *finish* first: the sweep keeps the newest
    b = service.submit({"algorithm": "WCC", "graph": "web"})
    _wait(service, b)
    out = service.gc(max_count=1)
    assert out == {"swept": [a], "kept": 1}
    assert a not in {j["job_id"] for j in service.list_jobs()}
    assert not os.path.isdir(service.job_dir(a))
    assert os.path.isdir(service.job_dir(b))
    # idempotent: a second sweep has nothing to do
    assert service.gc(max_count=1) == {"swept": [], "kept": 1}


def test_gc_never_touches_live_jobs(service):
    jid = service.submit({"algorithm": "PageRank", "graph": "web",
                          "throttle_s": 0.2})
    deadline = time.monotonic() + 30
    while (service.status(jid)["state"] == JobState.PENDING
           and time.monotonic() < deadline):
        time.sleep(0.02)
    out = service.gc(max_age_s=0.0, max_count=0)
    assert jid not in out["swept"]
    service.cancel(jid)
    _wait(service, jid)


def test_forget_survives_restart(tmp_path):
    """A forgotten job stays forgotten after journal replay — the
    ``forget`` record is part of the durable history."""
    data_dir = tmp_path / "svc"
    svc = GraphService(data_dir, max_concurrent=1)
    svc.graphs.register("web", WEB_SPEC)
    svc.start()
    jid = svc.submit({"algorithm": "WCC", "graph": "web"})
    _wait(svc, jid)
    assert svc.gc(max_age_s=0.0)["swept"] == [jid]
    svc.shutdown(drain=True, timeout=60)

    svc2 = GraphService(data_dir)
    svc2.recover()
    assert jid not in svc2.jobs
    svc2.journal.close()
    svc2.graphs.close()


def test_startup_retention_sweep(tmp_path):
    data_dir = tmp_path / "svc"
    svc = GraphService(data_dir, max_concurrent=1)
    svc.graphs.register("web", WEB_SPEC)
    svc.start()
    jid = svc.submit({"algorithm": "WCC", "graph": "web"})
    _wait(svc, jid)
    svc.shutdown(drain=True, timeout=60)

    svc2 = GraphService(data_dir, retain_age_s=0.0)
    svc2.start()
    try:
        assert jid not in svc2.jobs
        assert not os.path.isdir(svc2.job_dir(jid))
    finally:
        svc2.shutdown(drain=True, timeout=60)
