"""Shared-memory segment lifecycle for the process backend.

One `multiprocessing.shared_memory` segment per run carries CSR
topology, vertex/edge state and per-worker counters.  The pool must be
unlinked on *every* exit path — clean convergence, worker SIGKILL,
KeyboardInterrupt — and attaching workers must never register with the
stdlib resource_tracker (whose set-based cache turns N attachers into
KeyError noise at interpreter exit, cpython gh-82300).
"""

import glob
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.engine import EngineConfig, run
from repro.graph import generators
from repro.robust import WorkerDied
from repro.storage.shm import SEGMENT_PREFIX, ArrayLayout, SharedArrayPool

pytestmark = pytest.mark.parallel_backend

SHM_DIR = "/dev/shm"


def _leftover_segments():
    if not os.path.isdir(SHM_DIR):  # non-Linux: nothing observable
        return []
    return glob.glob(os.path.join(SHM_DIR, SEGMENT_PREFIX + "*"))


@pytest.fixture(autouse=True)
def no_preexisting_segments():
    assert _leftover_segments() == []
    yield
    assert _leftover_segments() == [], "run leaked a shared-memory segment"


@pytest.fixture(scope="module")
def small_graph():
    return generators.rmat(6, 8.0, seed=3)


# ---------------------------------------------------------------------------
# pool / layout unit behaviour
# ---------------------------------------------------------------------------

def test_layout_alignment_and_round_trip():
    layout = ArrayLayout.build({
        "a": ((3,), np.int8),
        "b": ((4, 2), np.float64),   # must start 8-byte aligned
        "c": ((0,), np.int64),       # empty arrays are legal
    })
    off_b = layout.entries["b"][0]
    assert off_b % 8 == 0 and off_b >= 3
    with SharedArrayPool.create(layout) as pool:
        b = pool.array("b")
        b[:] = 7.5
        other = SharedArrayPool.attach(pool.name, layout)
        assert np.array_equal(other.array("b"), b)
        assert other.array("c").size == 0
        other.release_views()
        other.close()


def test_unlink_is_idempotent_and_attachers_never_unlink():
    layout = ArrayLayout.build({"x": ((8,), np.int64)})
    pool = SharedArrayPool.create(layout)
    name = pool.name
    attacher = SharedArrayPool.attach(name, layout)
    attacher.release_views()
    attacher.close()
    attacher.unlink()          # no-op: not the owner
    assert _leftover_segments()  # still alive
    pool.close()
    pool.unlink()
    pool.unlink()              # idempotent
    assert _leftover_segments() == []


# ---------------------------------------------------------------------------
# engine exit paths
# ---------------------------------------------------------------------------

def test_clean_run_unlinks_segment(small_graph):
    res = run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
              config=EngineConfig(threads=2, seed=0, jitter=0.5),
              backend="process")
    assert res.converged
    # the autouse fixture asserts no leftover segment on teardown


def test_worker_sigkill_unlinks_segment(small_graph):
    import multiprocessing as mp

    def kill_observer(iteration, _state, _next_ids):
        if iteration != 1:
            return
        for p in mp.active_children():
            if p.name.startswith("repro-nondet-worker"):
                os.kill(p.pid, signal.SIGKILL)
                return

    with pytest.raises(WorkerDied):
        run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
            config=EngineConfig(threads=2, seed=0, jitter=0.5),
            backend="process", observer=kill_observer)


def test_keyboard_interrupt_unlinks_segment(small_graph):
    def interrupting_observer(iteration, _state, _next_ids):
        if iteration >= 1:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
            config=EngineConfig(threads=2, seed=0, jitter=0.5),
            backend="process", observer=interrupting_observer)


def test_no_resource_tracker_noise_at_interpreter_exit():
    """Workers attach without resource_tracker registration: a full run
    in a fresh interpreter must exit 0 with a silent stderr (gh-82300
    would print KeyError tracebacks from the tracker at shutdown)."""
    code = textwrap.dedent("""
        from repro.algorithms import PageRank
        from repro.engine import EngineConfig, run
        from repro.graph import generators

        graph = generators.rmat(6, 8.0, seed=3)
        res = run(PageRank(epsilon=1e-3), graph, mode="nondeterministic",
                  config=EngineConfig(threads=4, seed=0, jitter=0.5),
                  backend="process")
        assert res.converged
    """)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.path.dirname(__file__), "..", "src"),
                      env.get("PYTHONPATH", "")]))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert "resource_tracker" not in proc.stderr, proc.stderr
    assert "Traceback" not in proc.stderr, proc.stderr


# ---------------------------------------------------------------------------
# per-job namespacing and the service orphan sweep
# ---------------------------------------------------------------------------

def test_segment_namespace_scopes_default_names():
    from repro.storage.shm import current_segment_namespace, segment_namespace

    layout = ArrayLayout.build({"x": ((4,), np.int64)})
    assert current_segment_namespace() is None
    with segment_namespace("svcabc123-j0001-00aa"):
        assert current_segment_namespace() == "svcabc123-j0001-00aa"
        pool = SharedArrayPool.create(layout)
        try:
            assert pool.name.startswith(
                SEGMENT_PREFIX + "svcabc123-j0001-00aa-")
        finally:
            pool.close()
            pool.unlink()
    assert current_segment_namespace() is None
    # explicit names bypass the namespace untouched
    with segment_namespace("svcabc123-j0002-00aa"):
        pool = SharedArrayPool.create(layout, name="repro-pool-explicit")
        try:
            assert pool.name == "repro-pool-explicit"
        finally:
            pool.close()
            pool.unlink()


def test_segment_namespace_rejects_bad_names():
    from repro.storage.shm import segment_namespace

    for bad in ("", "has space", "a/b", "x" * 81):
        with pytest.raises(ValueError):
            with segment_namespace(bad):
                pass


def test_sweep_is_scoped_to_namespace_and_spares_live_jobs():
    """The startup sweep must only reap segments of its own service
    namespace, and never ones whose job namespace is still live."""
    from repro.storage.shm import segment_namespace, sweep_orphaned_segments

    layout = ArrayLayout.build({"x": ((4,), np.int64)})
    pools = {}
    for ns in ("svcaaaa0000-j0001-00aa",   # dead job, our service
               "svcaaaa0000-j0002-00aa",   # live job, our service
               "svcbbbb1111-j0001-00aa"):  # another service entirely
        with segment_namespace(ns):
            pools[ns] = SharedArrayPool.create(layout)
    try:
        swept = sweep_orphaned_segments(
            "svcaaaa0000", live=("svcaaaa0000-j0002-00aa",))
        assert swept == [pools["svcaaaa0000-j0001-00aa"].name]
        assert not os.path.exists(
            os.path.join(SHM_DIR, pools["svcaaaa0000-j0001-00aa"].name))
        for survivor in ("svcaaaa0000-j0002-00aa", "svcbbbb1111-j0001-00aa"):
            assert os.path.exists(
                os.path.join(SHM_DIR, pools[survivor].name)), survivor
    finally:
        for ns, pool in pools.items():
            pool.close()
            if ns != "svcaaaa0000-j0001-00aa":  # already unlinked by sweep
                pool.unlink()


def test_concurrent_jobs_plus_sigkilled_third_leave_no_segments(tmp_path):
    """Two process-backend jobs run concurrently under distinct job
    namespaces while a third namespace's segment — orphaned by a
    SIGKILL'd incarnation — is swept; afterwards /dev/shm is clean."""
    from repro.service.scheduler import GraphService, _service_namespace

    if not os.path.isdir(SHM_DIR):
        pytest.skip("no observable /dev/shm on this platform")
    data_dir = tmp_path / "svc"
    namespace = _service_namespace(str(data_dir))

    # plant the orphan exactly as a SIGKILL'd incarnation leaves it: a
    # named segment of one of *this* service's job namespaces that no
    # process unlinked (SharedArrayPool.close unlinks for a live owner,
    # which is precisely what a kill -9 never gets to run)
    orphan_name = f"{SEGMENT_PREFIX}{namespace}-j0099-dead-deadbeef"
    orphan_file = os.path.join(SHM_DIR, orphan_name)
    with open(orphan_file, "wb") as fh:
        fh.write(b"\x00" * 64)
    assert os.path.exists(orphan_file)

    svc = GraphService(data_dir, max_concurrent=2)
    svc.graphs.register("tiny", {"dataset": "web-google-mini",
                                 "scale": 6, "seed": 3})
    svc.start()  # recovery sweep runs here
    try:
        assert not os.path.exists(orphan_file), "orphan survived startup"
        assert orphan_name in svc.swept_segments
        jids = [svc.submit({"algorithm": "PageRank", "graph": "tiny",
                            "backend": "process",
                            "config": {"threads": 2, "seed": s,
                                       "jitter": 0.5}})
                for s in (0, 1)]
        import time as _time

        deadline = _time.monotonic() + 120
        while any(svc.status(j)["state"] not in ("done", "failed")
                  for j in jids):
            assert _time.monotonic() < deadline
            _time.sleep(0.05)
        assert [svc.status(j)["state"] for j in jids] == ["done", "done"]
    finally:
        svc.shutdown(drain=True, timeout=60)
    # the module's autouse fixture asserts /dev/shm is clean on teardown
