"""Shared-memory segment lifecycle for the process backend.

One `multiprocessing.shared_memory` segment per run carries CSR
topology, vertex/edge state and per-worker counters.  The pool must be
unlinked on *every* exit path — clean convergence, worker SIGKILL,
KeyboardInterrupt — and attaching workers must never register with the
stdlib resource_tracker (whose set-based cache turns N attachers into
KeyError noise at interpreter exit, cpython gh-82300).
"""

import glob
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.engine import EngineConfig, run
from repro.graph import generators
from repro.robust import WorkerDied
from repro.storage.shm import SEGMENT_PREFIX, ArrayLayout, SharedArrayPool

pytestmark = pytest.mark.parallel_backend

SHM_DIR = "/dev/shm"


def _leftover_segments():
    if not os.path.isdir(SHM_DIR):  # non-Linux: nothing observable
        return []
    return glob.glob(os.path.join(SHM_DIR, SEGMENT_PREFIX + "*"))


@pytest.fixture(autouse=True)
def no_preexisting_segments():
    assert _leftover_segments() == []
    yield
    assert _leftover_segments() == [], "run leaked a shared-memory segment"


@pytest.fixture(scope="module")
def small_graph():
    return generators.rmat(6, 8.0, seed=3)


# ---------------------------------------------------------------------------
# pool / layout unit behaviour
# ---------------------------------------------------------------------------

def test_layout_alignment_and_round_trip():
    layout = ArrayLayout.build({
        "a": ((3,), np.int8),
        "b": ((4, 2), np.float64),   # must start 8-byte aligned
        "c": ((0,), np.int64),       # empty arrays are legal
    })
    off_b = layout.entries["b"][0]
    assert off_b % 8 == 0 and off_b >= 3
    with SharedArrayPool.create(layout) as pool:
        b = pool.array("b")
        b[:] = 7.5
        other = SharedArrayPool.attach(pool.name, layout)
        assert np.array_equal(other.array("b"), b)
        assert other.array("c").size == 0
        other.release_views()
        other.close()


def test_unlink_is_idempotent_and_attachers_never_unlink():
    layout = ArrayLayout.build({"x": ((8,), np.int64)})
    pool = SharedArrayPool.create(layout)
    name = pool.name
    attacher = SharedArrayPool.attach(name, layout)
    attacher.release_views()
    attacher.close()
    attacher.unlink()          # no-op: not the owner
    assert _leftover_segments()  # still alive
    pool.close()
    pool.unlink()
    pool.unlink()              # idempotent
    assert _leftover_segments() == []


# ---------------------------------------------------------------------------
# engine exit paths
# ---------------------------------------------------------------------------

def test_clean_run_unlinks_segment(small_graph):
    res = run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
              config=EngineConfig(threads=2, seed=0, jitter=0.5),
              backend="process")
    assert res.converged
    # the autouse fixture asserts no leftover segment on teardown


def test_worker_sigkill_unlinks_segment(small_graph):
    import multiprocessing as mp

    def kill_observer(iteration, _state, _next_ids):
        if iteration != 1:
            return
        for p in mp.active_children():
            if p.name.startswith("repro-nondet-worker"):
                os.kill(p.pid, signal.SIGKILL)
                return

    with pytest.raises(WorkerDied):
        run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
            config=EngineConfig(threads=2, seed=0, jitter=0.5),
            backend="process", observer=kill_observer)


def test_keyboard_interrupt_unlinks_segment(small_graph):
    def interrupting_observer(iteration, _state, _next_ids):
        if iteration >= 1:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run(PageRank(epsilon=1e-3), small_graph, mode="nondeterministic",
            config=EngineConfig(threads=2, seed=0, jitter=0.5),
            backend="process", observer=interrupting_observer)


def test_no_resource_tracker_noise_at_interpreter_exit():
    """Workers attach without resource_tracker registration: a full run
    in a fresh interpreter must exit 0 with a silent stderr (gh-82300
    would print KeyError tracebacks from the tracker at shutdown)."""
    code = textwrap.dedent("""
        from repro.algorithms import PageRank
        from repro.engine import EngineConfig, run
        from repro.graph import generators

        graph = generators.rmat(6, 8.0, seed=3)
        res = run(PageRank(epsilon=1e-3), graph, mode="nondeterministic",
                  config=EngineConfig(threads=4, seed=0, jitter=0.5),
                  backend="process")
        assert res.converged
    """)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.path.dirname(__file__), "..", "src"),
                      env.get("PYTHONPATH", "")]))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert "resource_tracker" not in proc.stderr, proc.stderr
    assert "Traceback" not in proc.stderr, proc.stderr
