"""Tests for convergence-speed and error analysis (future-work modules)."""

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank, WeaklyConnectedComponents, reference
from repro.analysis import epsilon_error_study, error_report
from repro.engine import ConflictProfile
from repro.graph import generators
from repro.theory import measure_convergence_speed


class TestSpeedReport:
    @pytest.fixture(scope="class")
    def bfs_report(self):
        g = generators.erdos_renyi(300, 1100, seed=5)
        return measure_convergence_speed(
            lambda: BFS(source=0), g, threads_list=(2, 4), delays=(1.0, 4.0),
            seeds=(0, 1),
        )

    def test_baselines_present(self, bfs_report):
        assert bfs_report.deterministic_iterations >= 1
        assert bfs_report.synchronous_iterations >= bfs_report.deterministic_iterations

    def test_chain_bound_holds_for_rw(self, bfs_report):
        """Theorem 1's chain argument: NE <= SYNC + 1 for RW-only."""
        assert bfs_report.conflict_profile is ConflictProfile.READ_WRITE
        assert bfs_report.check_chain_bound()

    def test_points_cover_grid(self, bfs_report):
        assert len(bfs_report.points) == 2 * 2 * 2
        assert {p.threads for p in bfs_report.points} == {2, 4}

    def test_rows_include_baselines(self, bfs_report):
        rows = bfs_report.rows()
        assert rows[0]["threads"] == "DE"
        assert rows[1]["threads"] == "SYNC"
        assert len(rows) == 2 + len(bfs_report.points)

    def test_ww_bound_vacuous_but_ratio_reported(self, rmat_small):
        rep = measure_convergence_speed(
            WeaklyConnectedComponents, rmat_small,
            threads_list=(8,), delays=(1.0,), seeds=(0,),
        )
        assert rep.conflict_profile is ConflictProfile.WRITE_WRITE
        assert rep.check_chain_bound()  # vacuously true
        assert rep.recovery_ratio() > 0

    def test_nonconvergent_baseline_raises(self, path8):
        from repro.algorithms import AntiParity
        from repro.engine import EngineConfig

        with pytest.raises(RuntimeError, match="did not converge"):
            measure_convergence_speed(
                AntiParity, path8, threads_list=(2,), delays=(1.0,), seeds=(0,),
                max_iterations=10,
            )


class TestErrorReport:
    def test_zero_error_on_identical(self):
        v = np.array([3.0, 1.0, 2.0])
        rep = error_report(v, v.copy())
        assert rep.max_abs == 0.0
        assert rep.top_k_agreement == 1.0
        assert rep.footrule_top_k == 0.0

    def test_known_errors(self):
        ref = np.array([1.0, 2.0, 3.0, 4.0])
        val = ref + np.array([0.0, 0.1, -0.2, 0.0])
        rep = error_report(val, ref)
        assert rep.max_abs == pytest.approx(0.2)
        assert rep.mean_abs == pytest.approx(0.075)
        assert rep.q50 <= rep.q90 <= rep.q99 <= rep.max_abs

    def test_rank_displacement_detected(self):
        ref = np.array([4.0, 3.0, 2.0, 1.0])
        val = np.array([3.0, 4.0, 2.0, 1.0])  # swap top two
        rep = error_report(val, ref, top_k=2)
        assert rep.top_k_agreement == 1.0  # same *set*
        assert rep.footrule_top_k == 1.0  # each moved one place

    def test_top_k_set_change(self):
        ref = np.array([4.0, 3.0, 2.0, 1.0])
        val = np.array([4.0, 0.0, 2.0, 3.5])  # vertex 3 replaces vertex 1
        rep = error_report(val, ref, top_k=2)
        assert rep.top_k_agreement == 0.5

    def test_infinite_entries_must_match(self):
        ref = np.array([0.0, np.inf])
        ok = error_report(np.array([0.0, np.inf]), ref)
        assert ok.max_abs == 0.0
        with pytest.raises(ValueError, match="finite"):
            error_report(np.array([0.0, 5.0]), ref)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            error_report(np.zeros(3), np.zeros(4))

    def test_relative_error_floor(self):
        rep = error_report(np.array([1e-15]), np.array([0.0]), rel_floor=1e-12)
        assert np.isfinite(rep.max_rel)

    def test_as_dict_keys(self):
        rep = error_report(np.array([1.0]), np.array([1.0]), top_k=1)
        d = rep.as_dict()
        assert "max_abs" in d and "top1_agreement" in d


class TestEpsilonErrorStudy:
    def test_error_scales_with_epsilon(self, er_medium):
        ref = reference.pagerank_reference(er_medium)
        rows = epsilon_error_study(
            lambda e: PageRank(epsilon=e), er_medium, ref,
            epsilons=(1e-1, 1e-3), seeds=(0, 1),
        )
        by = {(r["config"], r["epsilon"]): r for r in rows}
        for config in ("DE", "8NE"):
            loose = by[(config, 1e-1)]["worst max_abs"]
            tight = by[(config, 1e-3)]["worst max_abs"]
            assert tight < loose

    def test_top_ranks_stable_at_tight_epsilon(self, er_medium):
        ref = reference.pagerank_reference(er_medium)
        rows = epsilon_error_study(
            lambda e: PageRank(epsilon=e), er_medium, ref,
            epsilons=(1e-3,), seeds=(0,), top_k=10,
        )
        for row in rows:
            assert row["mean top-k agreement"] >= 0.9
