"""Tests for SpMV and the two counterexample programs."""

import numpy as np
import pytest

from repro.algorithms import AntiParity, EdgeIncrementCounter, SpMV
from repro.engine import EngineConfig, run
from repro.graph import generators


class TestSpMV:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpMV(epsilon=0.0)
        with pytest.raises(ValueError):
            SpMV(contraction=1.0)
        with pytest.raises(ValueError):
            SpMV(contraction=0.0)

    @pytest.mark.parametrize("mode", ["sync", "deterministic", "nondeterministic"])
    def test_matches_direct_solve(self, rmat_small, mode):
        prog = SpMV(epsilon=1e-10)
        res = run(SpMV(epsilon=1e-10), rmat_small, mode=mode, threads=4)
        assert res.converged
        expected = prog.reference_solution(rmat_small)
        assert np.max(np.abs(res.result() - expected)) < 1e-6

    def test_row_sums_below_contraction(self, rmat_small):
        prog = SpMV(contraction=0.8)
        a = prog.coefficients(rmat_small)
        sums = np.zeros(rmat_small.num_vertices)
        np.add.at(sums, rmat_small.edge_dst, a)
        assert np.all(sums <= 0.8 + 1e-12)

    def test_nondet_close_across_seeds(self, rmat_small):
        prog = SpMV(epsilon=1e-9)
        expected = prog.reference_solution(rmat_small)
        for seed in range(3):
            res = run(SpMV(epsilon=1e-9), rmat_small, mode="nondeterministic",
                      config=EngineConfig(threads=8, seed=seed))
            assert np.max(np.abs(res.result() - expected)) < 1e-5

    def test_isolated_vertex_gets_b(self):
        from repro.graph import DiGraph

        g = DiGraph(3, [0], [1])
        res = run(SpMV(epsilon=1e-12, b=2.0), g, mode="deterministic")
        assert res.result()[2] == pytest.approx(2.0)


class TestEdgeIncrementCounter:
    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeIncrementCounter(target=0)

    def test_deterministic_total_is_exact(self, rmat_small):
        target = 4
        res = run(EdgeIncrementCounter(target=target), rmat_small, mode="deterministic")
        assert res.converged
        assert np.all(res.state.edge("count") == target)
        assert int(res.result().sum()) == target * rmat_small.num_edges

    def test_counts_always_reach_target(self, rmat_small):
        res = run(EdgeIncrementCounter(target=3), rmat_small, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=1))
        assert res.converged
        assert np.all(res.state.edge("count") == 3)

    def test_nondeterministic_overshoots_tally(self, rmat_small):
        """Lost increments mean more operations executed than the target:
        convergence is guaranteed (Theorem 2) but the semantic result is
        corrupted — the library's cautionary example."""
        target = 3
        exact = target * rmat_small.num_edges
        overshoots = []
        for seed in range(3):
            res = run(EdgeIncrementCounter(target=target), rmat_small,
                      mode="nondeterministic", config=EngineConfig(threads=16, seed=seed))
            assert res.converged
            total = int(res.result().sum())
            assert total >= exact
            overshoots.append(total - exact)
        assert any(o > 0 for o in overshoots)
        # Overshoot must track the observed lost writes (each lost
        # increment inflates the tally by exactly one).

    def test_overshoot_equals_lost_writes(self, star6):
        res = run(EdgeIncrementCounter(target=5), star6, mode="nondeterministic",
                  config=EngineConfig(threads=6, seed=2))
        exact = 5 * star6.num_edges
        total = int(res.result().sum())
        assert total - exact == res.conflicts.lost_writes


class TestAntiParity:
    @pytest.mark.parametrize("mode", ["sync", "deterministic", "nondeterministic"])
    def test_never_converges(self, path8, mode):
        res = run(AntiParity(), path8, mode=mode,
                  config=EngineConfig(threads=2, seed=0, max_iterations=40))
        assert not res.converged
        assert res.num_iterations == 40

    def test_verdict_not_established(self):
        from repro.theory import check_program, Verdict

        assert check_program(AntiParity()).verdict is Verdict.NOT_ESTABLISHED

    def test_isolated_vertices_no_crash(self):
        from repro.graph import DiGraph

        g = DiGraph(3, [], [])
        res = run(AntiParity(), g, mode="deterministic",
                  config=EngineConfig(max_iterations=5))
        assert res.converged  # no edges: everyone converges immediately
