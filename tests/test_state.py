"""Unit tests for FieldSpec and State."""

import numpy as np
import pytest

from repro.engine import INF, FieldSpec, State
from repro.graph import DiGraph


def triangle():
    return DiGraph(3, [0, 1, 2], [1, 2, 0])


class TestFieldSpec:
    def test_scalar_init(self):
        g = triangle()
        arr = FieldSpec(np.float64, 2.5).materialize(g, 3)
        assert arr.dtype == np.float64
        assert arr.tolist() == [2.5, 2.5, 2.5]

    def test_inf_init(self):
        g = triangle()
        arr = FieldSpec(np.float64, INF).materialize(g, 3)
        assert np.all(np.isinf(arr))

    def test_callable_init(self):
        g = triangle()
        spec = FieldSpec(np.float64, lambda graph: np.arange(graph.num_vertices) * 2.0)
        assert spec.materialize(g, 3).tolist() == [0.0, 2.0, 4.0]

    def test_callable_wrong_shape_rejected(self):
        g = triangle()
        spec = FieldSpec(np.float64, lambda graph: np.zeros(5))
        with pytest.raises(ValueError, match="shape"):
            spec.materialize(g, 3)

    def test_integer_dtype(self):
        g = triangle()
        arr = FieldSpec(np.int64, 7).materialize(g, 3)
        assert arr.dtype == np.int64

    def test_callable_result_copied(self):
        g = triangle()
        shared = np.zeros(3)
        spec = FieldSpec(np.float64, lambda graph: shared)
        arr = spec.materialize(g, 3)
        arr[0] = 9.0
        assert shared[0] == 0.0


class TestState:
    def make_state(self):
        g = triangle()
        return State(
            g,
            {"rank": FieldSpec(np.float32, 1.0)},
            {"value": FieldSpec(np.float64, 0.0), "weight": FieldSpec(np.float64, 3.0)},
        )

    def test_field_names(self):
        s = self.make_state()
        assert s.vertex_field_names == ("rank",)
        assert set(s.edge_field_names) == {"value", "weight"}

    def test_vertex_array_shape(self):
        s = self.make_state()
        assert s.vertex("rank").shape == (3,)

    def test_edge_array_shape(self):
        s = self.make_state()
        assert s.edge("weight").shape == (3,)
        assert s.edge("weight")[0] == 3.0

    def test_unknown_vertex_field(self):
        s = self.make_state()
        with pytest.raises(KeyError, match="unknown vertex field"):
            s.vertex("nope")

    def test_unknown_edge_field(self):
        s = self.make_state()
        with pytest.raises(KeyError, match="unknown edge field"):
            s.edge("nope")

    def test_snapshot_is_a_copy(self):
        s = self.make_state()
        snap = s.snapshot_edges()
        s.edge("value")[0] = 42.0
        assert snap["value"][0] == 0.0

    def test_commit_edges(self):
        s = self.make_state()
        s.commit_edges({"value": {1: 7.0, 2: 8.0}})
        assert s.edge("value").tolist() == [0.0, 7.0, 8.0]

    def test_copy_independent(self):
        s = self.make_state()
        c = s.copy()
        s.vertex("rank")[0] = 99.0
        s.edge("value")[0] = 99.0
        assert c.vertex("rank")[0] == 1.0
        assert c.edge("value")[0] == 0.0
        assert c.graph is s.graph
