"""Tests for the binary graph format and PSW shards."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BFS, SSSP, WeaklyConnectedComponents, reference
from repro.engine import run
from repro.graph import DiGraph, generators
from repro.storage import OutOfCoreRunner, ShardedGraph, load_graph, save_graph


class TestBinaryFormat:
    def test_roundtrip_graph_only(self, tmp_path, rmat_small):
        path = tmp_path / "g.bin"
        save_graph(rmat_small, path)
        g, va, ea = load_graph(path)
        assert g == rmat_small
        assert va == {} and ea == {}

    def test_roundtrip_with_arrays(self, tmp_path):
        g = generators.path_graph(6)
        vx = np.linspace(0, 1, 6)
        ew = np.arange(g.num_edges, dtype=np.int64)
        path = tmp_path / "g.bin"
        save_graph(g, path, vertex_arrays={"vx": vx}, edge_arrays={"ew": ew})
        g2, va, ea = load_graph(path)
        assert g2 == g
        assert np.array_equal(va["vx"], vx)
        assert np.array_equal(ea["ew"], ew)
        assert ea["ew"].dtype == np.int64

    def test_empty_graph(self, tmp_path):
        g = DiGraph(3, [], [])
        path = tmp_path / "g.bin"
        save_graph(g, path)
        g2, _, _ = load_graph(path)
        assert g2 == g

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_bytes(b"NOTAGRAPH" + b"\x00" * 64)
        with pytest.raises(ValueError, match="magic"):
            load_graph(path)

    def test_truncated_rejected(self, tmp_path, rmat_small):
        path = tmp_path / "g.bin"
        save_graph(rmat_small, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            load_graph(path)

    def test_wrong_array_shape_rejected(self, tmp_path):
        g = generators.path_graph(4)
        with pytest.raises(ValueError, match="shape"):
            save_graph(g, tmp_path / "g.bin", vertex_arrays={"x": np.zeros(7)})


class TestShardedGraph:
    def test_invariants(self, rmat_small):
        for k in (1, 2, 4, 7):
            ShardedGraph(rmat_small, k).validate()

    def test_bad_shard_count(self, rmat_small):
        with pytest.raises(ValueError):
            ShardedGraph(rmat_small, 0)

    def test_shards_partition_by_destination(self, rmat_small):
        sg = ShardedGraph(rmat_small, 4)
        total = sum(s.num_edges for s in sg.shards)
        assert total == rmat_small.num_edges

    def test_window_extracts_source_range(self, rmat_small):
        sg = ShardedGraph(rmat_small, 4)
        lo, hi = sg.intervals[1]
        for s in sg.shards:
            eids = s.window(lo, hi)
            srcs = rmat_small.edge_src[eids]
            assert np.all((srcs >= lo) & (srcs < hi))

    def test_interval_edges_cover_incident_edges(self, rmat_small):
        sg = ShardedGraph(rmat_small, 3)
        for k, (lo, hi) in enumerate(sg.intervals):
            covered = set(sg.interval_edge_ids(k).tolist())
            for v in range(lo, hi):
                for e in rmat_small.incident_eids(v).tolist():
                    assert e in covered, (k, v, e)

    def test_save_load_roundtrip(self, tmp_path, rmat_small):
        sg = ShardedGraph(rmat_small, 4)
        sg.save(tmp_path / "shards")
        back = ShardedGraph.load(tmp_path / "shards")
        assert back.graph == rmat_small
        assert back.intervals == sg.intervals
        back.validate()

    def test_manifest_mismatch_detected(self, tmp_path, rmat_small):
        sg = ShardedGraph(rmat_small, 2)
        d = tmp_path / "shards"
        sg.save(d)
        manifest = (d / "manifest.txt").read_text().splitlines()
        first = manifest[0].split()
        first[1] = str(int(first[1]) + 5)  # lie about edge count
        (d / "manifest.txt").write_text("\n".join([" ".join(first)] + manifest[1:]) + "\n")
        with pytest.raises(ValueError, match="manifest"):
            ShardedGraph.load(d)

    @given(st.integers(1, 20), st.integers(1, 6), st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_invariants_on_random_graphs(self, n, k, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(0, 4 * n))
        g = DiGraph(n, rng.integers(0, n, m), rng.integers(0, n, m))
        sg = ShardedGraph(g, k)
        sg.validate()


class TestOutOfCoreRunner:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_identical_to_in_memory_gauss_seidel(self, rmat_small, num_shards):
        sg = ShardedGraph(rmat_small, num_shards)
        ooc = OutOfCoreRunner(sg).run(WeaklyConnectedComponents())
        mem = run(WeaklyConnectedComponents(), rmat_small, mode="deterministic")
        assert ooc.converged
        assert np.array_equal(ooc.result(), mem.result())
        assert ooc.num_iterations == mem.num_iterations

    def test_sssp_exact(self, rmat_small):
        prog = SSSP(source=0)
        truth = reference.sssp_reference(rmat_small, 0, prog.make_weights(rmat_small))
        res = OutOfCoreRunner(ShardedGraph(rmat_small, 3)).run(SSSP(source=0))
        assert np.array_equal(res.result(), truth)

    def test_bfs_exact(self, er_medium):
        res = OutOfCoreRunner(ShardedGraph(er_medium, 4)).run(BFS(source=0))
        assert np.array_equal(res.result(), reference.bfs_reference(er_medium, 0))

    def test_io_accounted(self, rmat_small):
        runner = OutOfCoreRunner(ShardedGraph(rmat_small, 4))
        res = runner.run(WeaklyConnectedComponents())
        io = res.extra["io"]
        assert io["interval_loads"] > 0
        assert io["bytes_read"] > 0
        assert io["bytes_written"] > 0

    def test_more_shards_smaller_windows(self, er_medium):
        """More shards = smaller resident window per interval load."""
        small = OutOfCoreRunner(ShardedGraph(er_medium, 2))
        many = OutOfCoreRunner(ShardedGraph(er_medium, 8))
        small.run(BFS(source=0))
        many.run(BFS(source=0))
        per_load_small = small.io.bytes_read / small.io.interval_loads
        per_load_many = many.io.bytes_read / many.io.interval_loads
        assert per_load_many < per_load_small
