"""White-box tests of the engines' store internals.

These pin down behaviours the black-box suites only exercise
indirectly: the pure-async version-history compaction, the push
engine's visible-fold/consume semantics, and the racy store's
latest-visible-write selection.
"""

import numpy as np
import pytest

from repro.engine import (
    AtomicityPolicy,
    ConflictLog,
    DelayModel,
    EngineConfig,
    FieldSpec,
    State,
    TaskSlot,
)
from repro.engine.nondet_engine import _RacyStore
from repro.engine.pure_async import _VersionedStore
from repro.engine.push import AccumulatorSpec, CombineOp, PushEngine
from repro.graph import DiGraph


def edge_state(n_edges=4, init=0.0):
    g = DiGraph(n_edges + 1, list(range(n_edges)), [n_edges] * n_edges)
    return State(g, {}, {"e": FieldSpec(np.float64, init)})


class TestRacyStoreSelection:
    def make(self, state, delay=2.0):
        committed = {f: state.edge(f) for f in state.edge_field_names}
        return _RacyStore(
            committed, DelayModel.uniform(delay), AtomicityPolicy.CACHE_LINE, 0.0, None
        )

    def test_latest_visible_write_wins(self):
        state = edge_state()
        store = self.make(state)
        store.current = TaskSlot(vid=1, thread=0, pi=0, time=0.0)
        store.write(1, 0, "e", 10.0)
        store.current = TaskSlot(vid=2, thread=0, pi=1, time=1.0)
        store.write(2, 0, "e", 20.0)
        store.current = TaskSlot(vid=3, thread=0, pi=2, time=2.0)
        assert store.read(3, 0, "e") == 20.0

    def test_invisible_concurrent_write_returns_committed(self):
        state = edge_state(init=-1.0)
        store = self.make(state, delay=2.0)
        store.current = TaskSlot(vid=1, thread=0, pi=0, time=0.0)
        store.write(1, 0, "e", 10.0)
        # reader on another thread within the window: sees committed -1
        store.current = TaskSlot(vid=2, thread=1, pi=1, time=1.0)
        assert store.read(2, 0, "e") == -1.0
        assert store.stale_reads == 1

    def test_commit_applies_max_timestamp(self):
        state = edge_state()
        store = self.make(state)
        store.current = TaskSlot(vid=1, thread=0, pi=0, time=0.0)
        store.write(1, 0, "e", 10.0)
        store.current = TaskSlot(vid=2, thread=1, pi=0, time=0.4)
        store.write(2, 0, "e", 20.0)
        log = ConflictLog()
        store.commit(state, 0, log)
        assert state.edge("e")[0] == 20.0
        assert log.write_write == 1
        assert log.lost_writes == 1


class TestVersionedStoreCompaction:
    def make(self, state):
        return _VersionedStore(
            state, DelayModel.uniform(2.0), AtomicityPolicy.CACHE_LINE, 0.0, None
        )

    def test_history_pruned_beyond_threshold(self):
        state = edge_state()
        store = self.make(state)
        n_writes = store.PRUNE_THRESHOLD * 3
        for i in range(n_writes):
            store.current_thread = 0
            store.current_time = float(i)
            store.write(1, 0, "e", float(i))
        hist = store._history[("e", 0)]
        assert len(hist) <= store.PRUNE_THRESHOLD + 1
        # the newest fully-propagated value moved into the base
        assert ("e", 0) in store._base

    def test_reads_correct_after_compaction(self):
        state = edge_state()
        store = self.make(state)
        for i in range(64):
            store.current_thread = 0
            store.current_time = float(i)
            store.write(1, 0, "e", float(i))
        # a reader far in the future sees the newest value
        store.current_thread = 1
        store.current_time = 100.0
        assert store.read(2, 0, "e") == 63.0

    def test_finalize_uses_base_when_tail_empty(self):
        state = edge_state()
        store = self.make(state)
        for i in range(40):
            store.current_thread = 0
            store.current_time = float(i)
            store.write(1, 0, "e", float(i))
        # force one more compaction pass far in the future
        store.current_time = 1000.0
        store._compact(("e", 0), store._history[("e", 0)])
        log = ConflictLog()
        store.finalize(log)
        assert state.edge("e")[0] == 39.0


class TestPushEngineFold:
    def make_engine(self, op=CombineOp.ADD):
        engine = PushEngine()
        engine._acc_specs = {"acc": AccumulatorSpec(op)}
        engine._pending = {"acc": {}}
        engine._delay_model = DelayModel.uniform(2.0)
        engine._lost_rng = None
        engine.log = ConflictLog()
        return engine

    def slot(self, thread, pi, time=None):
        return TaskSlot(vid=0, thread=thread, pi=pi,
                        time=float(pi if time is None else time))

    def test_fold_consumes_visible_only(self):
        engine = self.make_engine()
        engine._current_slot = self.slot(0, 0)
        engine.deliver(9, 5, "acc", 1.0)  # push at t=0 by thread 0
        engine._current_slot = self.slot(1, 1)  # t=1, other thread: invisible
        assert engine.fold_visible(5, "acc", consume=True) == 0.0
        # the in-flight push survived the consume
        assert len(engine._pending["acc"][5]) == 1
        engine._current_slot = self.slot(1, 4)  # t=4: propagated
        assert engine.fold_visible(5, "acc", consume=True) == 1.0
        assert 5 not in engine._pending["acc"]

    def test_min_combine_folds(self):
        engine = self.make_engine(CombineOp.MIN)
        engine._current_slot = self.slot(0, 0)
        engine.deliver(1, 5, "acc", 7.0)
        engine._current_slot = self.slot(0, 1)
        engine.deliver(2, 5, "acc", 3.0)
        engine._current_slot = self.slot(0, 5)
        assert engine.fold_visible(5, "acc", consume=False) == 3.0
        # peek did not consume
        assert len(engine._pending["acc"][5]) == 2

    def test_racing_combines_counted(self):
        engine = self.make_engine()
        engine._current_slot = self.slot(0, 0)
        engine.deliver(1, 5, "acc", 1.0)
        engine._current_slot = self.slot(1, 0)  # concurrent other thread
        engine.deliver(2, 5, "acc", 1.0)
        assert engine.log.write_write == 1
        assert engine.log.lost_writes == 0  # atomic: nothing lost

    def test_lost_update_injection(self):
        engine = self.make_engine()
        engine._lost_rng = np.random.default_rng(0)
        engine._lost_p = 1.0
        engine._current_slot = self.slot(0, 0)
        engine.deliver(1, 5, "acc", 1.0)
        engine._current_slot = self.slot(1, 0)
        engine.deliver(2, 5, "acc", 1.0)
        assert engine.log.lost_writes == 1
        assert len(engine._pending["acc"][5]) == 1
