"""Tests for the executable theory: eligibility, monotonicity, chains."""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    SSSP,
    AntiParity,
    EdgeIncrementCounter,
    MaxLabelPropagation,
    PageRank,
    SpMV,
    WeaklyConnectedComponents,
)
from repro.engine import (
    AlgorithmTraits,
    ConflictProfile,
    ConvergenceKind,
    EngineConfig,
    Monotonicity,
    run,
)
from repro.graph import generators
from repro.theory import (
    Verdict,
    audit_run,
    check_program,
    check_traits,
    probe_monotonicity,
    trace_chain,
)


def traits(profile, sync, async_det, mono=Monotonicity.NONE, kind=ConvergenceKind.ABSOLUTE):
    return AlgorithmTraits(
        name="t",
        conflict_profile=profile,
        converges_synchronously=sync,
        converges_async_deterministic=async_det,
        monotonicity=mono,
        convergence_kind=kind,
    )


class TestCheckTraits:
    def test_theorem1_basic(self):
        r = check_traits(traits(ConflictProfile.READ_WRITE, True, True))
        assert r.verdict is Verdict.ELIGIBLE_THEOREM_1

    def test_theorem1_conflict_free(self):
        r = check_traits(traits(ConflictProfile.NONE, True, False))
        assert r.verdict is Verdict.ELIGIBLE_THEOREM_1

    def test_theorem1_extension_async_only(self):
        r = check_traits(traits(ConflictProfile.READ_WRITE, False, True))
        assert r.verdict is Verdict.ELIGIBLE_THEOREM_1
        assert any("extended" in s for s in r.reasons)

    def test_theorem2_monotone_ww(self):
        r = check_traits(
            traits(ConflictProfile.WRITE_WRITE, False, True, Monotonicity.DECREASING)
        )
        assert r.verdict is Verdict.ELIGIBLE_THEOREM_2

    def test_theorem2_increasing_also_ok(self):
        r = check_traits(
            traits(ConflictProfile.WRITE_WRITE, True, True, Monotonicity.INCREASING)
        )
        assert r.verdict is Verdict.ELIGIBLE_THEOREM_2

    def test_ww_non_monotone_not_established(self):
        r = check_traits(traits(ConflictProfile.WRITE_WRITE, True, True))
        assert r.verdict is Verdict.NOT_ESTABLISHED
        assert any("not monotone" in s for s in r.reasons)

    def test_ww_monotone_but_no_async_convergence(self):
        r = check_traits(
            traits(ConflictProfile.WRITE_WRITE, False, False, Monotonicity.DECREASING)
        )
        assert r.verdict is Verdict.NOT_ESTABLISHED

    def test_rw_no_convergence_anywhere(self):
        r = check_traits(traits(ConflictProfile.READ_WRITE, False, False))
        assert r.verdict is Verdict.NOT_ESTABLISHED

    def test_results_deterministic_flag(self):
        absolute = check_traits(
            traits(ConflictProfile.WRITE_WRITE, True, True, Monotonicity.DECREASING,
                   ConvergenceKind.ABSOLUTE)
        )
        approx = check_traits(
            traits(ConflictProfile.READ_WRITE, True, True,
                   kind=ConvergenceKind.APPROXIMATE)
        )
        assert absolute.results_deterministic
        assert not approx.results_deterministic
        assert any("variation" in w for w in approx.warnings)

    def test_render_contains_verdict(self):
        text = check_traits(traits(ConflictProfile.READ_WRITE, True, True)).render()
        assert "Theorem 1" in text


class TestBuiltinsVerdicts:
    @pytest.mark.parametrize(
        "program,expected",
        [
            (PageRank(), Verdict.ELIGIBLE_THEOREM_1),
            (SpMV(), Verdict.ELIGIBLE_THEOREM_1),
            (SSSP(source=0), Verdict.ELIGIBLE_THEOREM_1),
            (BFS(source=0), Verdict.ELIGIBLE_THEOREM_1),
            (WeaklyConnectedComponents(), Verdict.ELIGIBLE_THEOREM_2),
            (MaxLabelPropagation(), Verdict.ELIGIBLE_THEOREM_2),
            (EdgeIncrementCounter(), Verdict.ELIGIBLE_THEOREM_2),
            (AntiParity(), Verdict.NOT_ESTABLISHED),
        ],
    )
    def test_verdicts(self, program, expected):
        assert check_program(program).verdict is expected

    def test_eligible_property(self):
        assert Verdict.ELIGIBLE_THEOREM_1.eligible
        assert Verdict.ELIGIBLE_THEOREM_2.eligible
        assert not Verdict.NOT_ESTABLISHED.eligible


class TestAuditRun:
    def test_clean_on_honest_run(self, rmat_small):
        res = run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=0))
        assert audit_run(res) == []

    def test_flags_undeclared_write_write(self, rmat_small):
        class Liar(WeaklyConnectedComponents):
            def __init__(self):
                super().__init__()
                self.traits = AlgorithmTraits(
                    name="liar",
                    conflict_profile=ConflictProfile.READ_WRITE,  # false claim
                    converges_synchronously=True,
                    converges_async_deterministic=True,
                    monotonicity=Monotonicity.DECREASING,
                )

        res = run(Liar(), rmat_small, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=0))
        issues = audit_run(res)
        assert any("write-write" in s for s in issues)

    def test_flags_eligible_but_nonconverged(self, path8):
        class Stubborn(AntiParity):
            def __init__(self):
                super().__init__()
                self.traits = AlgorithmTraits(
                    name="stubborn",
                    conflict_profile=ConflictProfile.WRITE_WRITE,
                    converges_synchronously=True,
                    converges_async_deterministic=True,
                    monotonicity=Monotonicity.DECREASING,  # false claim
                )

        res = run(Stubborn(), path8, mode="nondeterministic",
                  config=EngineConfig(threads=2, seed=0, max_iterations=20))
        issues = audit_run(res)
        assert any("did not converge" in s for s in issues)

    def test_deterministic_run_with_conflicts_flagged(self, path8):
        res = run(WeaklyConnectedComponents(), path8, mode="deterministic")
        res.conflicts.read_write = 5  # simulate engine invariant breakage
        issues = audit_run(res)
        assert any("invariant" in s for s in issues)


class TestMonotonicityProbe:
    def test_wcc_decreasing(self, rmat_small):
        p = probe_monotonicity(WeaklyConnectedComponents(), rmat_small)
        assert p.observed is Monotonicity.DECREASING
        assert p.consistent_with(Monotonicity.DECREASING)
        assert not p.consistent_with(Monotonicity.INCREASING)

    def test_maxlabel_increasing(self, rmat_small):
        p = probe_monotonicity(MaxLabelPropagation(), rmat_small)
        assert p.observed is Monotonicity.INCREASING

    def test_pagerank_not_monotone(self, rmat_small):
        p = probe_monotonicity(PageRank(), rmat_small)
        assert p.increased and p.decreased
        assert p.observed is Monotonicity.NONE
        assert p.consistent_with(Monotonicity.NONE)

    def test_probe_respects_iteration_cap(self, path8):
        p = probe_monotonicity(AntiParity(), path8, max_iterations=10)
        assert p.iterations_observed <= 11  # initial snapshot + 10


class TestTraceChain:
    def test_chain_on_path(self):
        g = generators.path_graph(6)
        chain = trace_chain(BFS(source=0), g, target=5)
        assert chain.vertices[-1] == 5
        assert chain.length >= 2
        # each consecutive pair must actually be adjacent
        for a, b in zip(chain.vertices, chain.vertices[1:]):
            assert g.has_edge(a, b) or g.has_edge(b, a)

    def test_change_iterations_increasing(self):
        g = generators.path_graph(6)
        chain = trace_chain(BFS(source=0), g, target=5)
        assert list(chain.change_iterations) == sorted(chain.change_iterations)

    def test_source_trivial_chain(self):
        g = generators.path_graph(4)
        chain = trace_chain(BFS(source=0), g, target=0)
        assert chain.vertices == (0,)

    def test_invalid_target(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError, match="out of range"):
            trace_chain(BFS(source=0), g, target=9)

    def test_render_readable(self):
        g = generators.path_graph(4)
        text = trace_chain(BFS(source=0), g, target=3).render()
        assert "vertex 3" in text
