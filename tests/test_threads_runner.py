"""Tests for the real-thread backend and the unified runner."""

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, PageRank, WeaklyConnectedComponents, reference
from repro.engine import AtomicityPolicy, EngineConfig, run
from repro.engine.runner import ENGINES
from repro.obs import Telemetry


class ExplodingWCC(WeaklyConnectedComponents):
    """WCC whose update raises once a chosen vertex runs."""

    def __init__(self, bomb_vid: int = 3):
        super().__init__()
        self.bomb_vid = bomb_vid

    def update(self, ctx):
        if ctx.vid == self.bomb_vid:
            raise ZeroDivisionError(f"boom in f({ctx.vid})")
        super().update(ctx)


class TestThreadsEngine:
    def test_wcc_exact_under_real_races(self, rmat_small):
        truth = reference.wcc_reference(rmat_small)
        res = run(WeaklyConnectedComponents(), rmat_small, mode="threads",
                  config=EngineConfig(threads=4))
        assert res.converged
        assert np.array_equal(res.result(), truth)

    def test_sssp_exact_under_real_races(self, rmat_small):
        prog = SSSP(source=0)
        truth = reference.sssp_reference(rmat_small, 0, prog.make_weights(rmat_small))
        res = run(SSSP(source=0), rmat_small, mode="threads",
                  config=EngineConfig(threads=4))
        assert np.array_equal(res.result(), truth)

    def test_bfs_exact(self, path8):
        res = run(BFS(source=0), path8, mode="threads", config=EngineConfig(threads=3))
        assert res.result().tolist() == [float(i) for i in range(8)]

    def test_lock_policy_accepted(self, rmat_small):
        res = run(WeaklyConnectedComponents(), rmat_small, mode="threads",
                  config=EngineConfig(threads=4, atomicity=AtomicityPolicy.LOCK))
        assert res.converged

    def test_none_policy_rejected(self, rmat_small):
        with pytest.raises(ValueError, match="cannot forgo atomicity"):
            run(WeaklyConnectedComponents(), rmat_small, mode="threads",
                config=EngineConfig(threads=2, atomicity=AtomicityPolicy.NONE))

    def test_pagerank_converges(self, rmat_small):
        res = run(PageRank(epsilon=1e-3), rmat_small, mode="threads",
                  config=EngineConfig(threads=4))
        assert res.converged
        ref = reference.pagerank_reference(rmat_small)
        assert np.max(np.abs(res.result().astype(np.float64) - ref)) < 0.05

    def test_work_accounting_present(self, rmat_small):
        res = run(BFS(source=0), rmat_small, mode="threads",
                  config=EngineConfig(threads=4))
        assert res.total_updates > 0
        assert res.total_reads > 0

    def test_worker_exception_propagates(self, rmat_small):
        # Regression: worker-thread exceptions used to die with the
        # thread, leaving a silently-wrong "converged" result.  The
        # original exception type must reach the caller.
        with pytest.raises(ZeroDivisionError, match=r"boom in f\(3\)"):
            run(ExplodingWCC(bomb_vid=3), rmat_small, mode="threads",
                config=EngineConfig(threads=4))

    def test_worker_failure_event_in_trace(self, rmat_small, tmp_path):
        from repro.obs import read_trace

        path = tmp_path / "fail.jsonl"
        sink = Telemetry(trace_path=str(path))
        with pytest.raises(ZeroDivisionError):
            run(ExplodingWCC(bomb_vid=3), rmat_small, mode="threads",
                config=EngineConfig(threads=4), telemetry=sink)
        # The sink is closed before re-raising, so the partial trace on
        # disk already names the failure.
        events = [r for r in read_trace(str(path))
                  if r.get("type") == "event" and r["name"] == "worker_failure"]
        assert len(events) == 1
        assert "ZeroDivisionError" in events[0]["error"]
        assert events[0]["threads"]  # at least one failed thread id

    def test_every_worker_failing_still_raises_original_type(self, rmat_small):
        # bomb on every vertex: several workers fail in the same
        # iteration; the first failure's type is preserved.
        class AllExploding(WeaklyConnectedComponents):
            def update(self, ctx):
                raise ZeroDivisionError(f"boom in f({ctx.vid})")

        with pytest.raises(ZeroDivisionError, match="boom"):
            run(AllExploding(), rmat_small, mode="threads",
                config=EngineConfig(threads=4))

    def test_lock_mode_stress_many_first_touch_edges(self, er_medium):
        # Regression for the _lock_for race: 3000 edges touched for the
        # first time by 8 concurrent workers used to be able to mint two
        # locks for one edge (lookup outside the guard), voiding mutual
        # exclusion exactly on first contention.
        truth = reference.wcc_reference(er_medium)
        res = run(WeaklyConnectedComponents(), er_medium, mode="threads",
                  config=EngineConfig(threads=8, atomicity=AtomicityPolicy.LOCK))
        assert res.converged
        assert np.array_equal(res.result(), truth)


class TestRunner:
    def test_all_modes_registered(self):
        assert set(ENGINES) == {
            "sync", "deterministic", "chromatic", "nondeterministic",
            "pure-async", "threads",
        }

    def test_unknown_mode(self, path8):
        with pytest.raises(ValueError, match="unknown mode"):
            run(WeaklyConnectedComponents(), path8, mode="magic")

    def test_config_and_kwargs_exclusive(self, path8):
        with pytest.raises(ValueError, match="not both"):
            run(WeaklyConnectedComponents(), path8,
                config=EngineConfig(), threads=4)

    def test_kwargs_build_config(self, path8):
        res = run(WeaklyConnectedComponents(), path8,
                  mode="nondeterministic", threads=2, seed=9, delay=3.0)
        assert res.config.threads == 2
        assert res.config.seed == 9
        assert res.config.delay == 3.0

    def test_observer_rejected_for_threads(self, path8):
        with pytest.raises(ValueError, match="observer"):
            run(WeaklyConnectedComponents(), path8, mode="threads",
                observer=lambda *a: None)

    def test_observer_called_each_iteration(self, path8):
        calls = []
        res = run(WeaklyConnectedComponents(), path8, mode="deterministic",
                  observer=lambda it, state, sched: calls.append(it))
        assert calls == list(range(res.num_iterations))

    def test_resume_from_state(self, path8):
        prog = WeaklyConnectedComponents()
        state = prog.make_state(path8)
        state.vertex("label")[:] = 0.0  # pre-converged labels
        state.edge("label")[:] = 0.0
        res = run(prog, path8, mode="deterministic", state=state)
        assert res.converged
        assert res.num_iterations <= 2

    def test_mode_recorded_in_result(self, path8):
        for mode in ("sync", "deterministic", "nondeterministic"):
            res = run(WeaklyConnectedComponents(), path8, mode=mode)
            assert res.mode == mode
