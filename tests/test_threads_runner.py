"""Tests for the real-thread backend and the unified runner."""

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, PageRank, WeaklyConnectedComponents, reference
from repro.engine import AtomicityPolicy, EngineConfig, run
from repro.engine.runner import ENGINES


class TestThreadsEngine:
    def test_wcc_exact_under_real_races(self, rmat_small):
        truth = reference.wcc_reference(rmat_small)
        res = run(WeaklyConnectedComponents(), rmat_small, mode="threads",
                  config=EngineConfig(threads=4))
        assert res.converged
        assert np.array_equal(res.result(), truth)

    def test_sssp_exact_under_real_races(self, rmat_small):
        prog = SSSP(source=0)
        truth = reference.sssp_reference(rmat_small, 0, prog.make_weights(rmat_small))
        res = run(SSSP(source=0), rmat_small, mode="threads",
                  config=EngineConfig(threads=4))
        assert np.array_equal(res.result(), truth)

    def test_bfs_exact(self, path8):
        res = run(BFS(source=0), path8, mode="threads", config=EngineConfig(threads=3))
        assert res.result().tolist() == [float(i) for i in range(8)]

    def test_lock_policy_accepted(self, rmat_small):
        res = run(WeaklyConnectedComponents(), rmat_small, mode="threads",
                  config=EngineConfig(threads=4, atomicity=AtomicityPolicy.LOCK))
        assert res.converged

    def test_none_policy_rejected(self, rmat_small):
        with pytest.raises(ValueError, match="cannot forgo atomicity"):
            run(WeaklyConnectedComponents(), rmat_small, mode="threads",
                config=EngineConfig(threads=2, atomicity=AtomicityPolicy.NONE))

    def test_pagerank_converges(self, rmat_small):
        res = run(PageRank(epsilon=1e-3), rmat_small, mode="threads",
                  config=EngineConfig(threads=4))
        assert res.converged
        ref = reference.pagerank_reference(rmat_small)
        assert np.max(np.abs(res.result().astype(np.float64) - ref)) < 0.05

    def test_work_accounting_present(self, rmat_small):
        res = run(BFS(source=0), rmat_small, mode="threads",
                  config=EngineConfig(threads=4))
        assert res.total_updates > 0
        assert res.total_reads > 0


class TestRunner:
    def test_all_modes_registered(self):
        assert set(ENGINES) == {
            "sync", "deterministic", "chromatic", "nondeterministic",
            "pure-async", "threads",
        }

    def test_unknown_mode(self, path8):
        with pytest.raises(ValueError, match="unknown mode"):
            run(WeaklyConnectedComponents(), path8, mode="magic")

    def test_config_and_kwargs_exclusive(self, path8):
        with pytest.raises(ValueError, match="not both"):
            run(WeaklyConnectedComponents(), path8,
                config=EngineConfig(), threads=4)

    def test_kwargs_build_config(self, path8):
        res = run(WeaklyConnectedComponents(), path8,
                  mode="nondeterministic", threads=2, seed=9, delay=3.0)
        assert res.config.threads == 2
        assert res.config.seed == 9
        assert res.config.delay == 3.0

    def test_observer_rejected_for_threads(self, path8):
        with pytest.raises(ValueError, match="observer"):
            run(WeaklyConnectedComponents(), path8, mode="threads",
                observer=lambda *a: None)

    def test_observer_called_each_iteration(self, path8):
        calls = []
        res = run(WeaklyConnectedComponents(), path8, mode="deterministic",
                  observer=lambda it, state, sched: calls.append(it))
        assert calls == list(range(res.num_iterations))

    def test_resume_from_state(self, path8):
        prog = WeaklyConnectedComponents()
        state = prog.make_state(path8)
        state.vertex("label")[:] = 0.0  # pre-converged labels
        state.edge("label")[:] = 0.0
        res = run(prog, path8, mode="deterministic", state=state)
        assert res.converged
        assert res.num_iterations <= 2

    def test_mode_recorded_in_result(self, path8):
        for mode in ("sync", "deterministic", "nondeterministic"):
            res = run(WeaklyConnectedComponents(), path8, mode=mode)
            assert res.mode == mode
