"""Tests for convergence traces, degree metrics, and the report generator."""

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank, WeaklyConnectedComponents
from repro.analysis import ConvergenceTrace, trace_convergence
from repro.engine import EngineConfig
from repro.graph import DiGraph, degree_profile, generators, gini, load_dataset, tail_ratio


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(10, 7.0)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_near_one(self):
        values = np.zeros(100)
        values[0] = 1000.0
        assert gini(values) > 0.9

    def test_empty_and_zero(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.zeros(5)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini(np.array([-1.0, 2.0]))

    def test_known_value(self):
        # two values {0, x}: G = 1/2
        assert gini(np.array([0.0, 10.0])) == pytest.approx(0.5)


class TestTailRatio:
    def test_uniform(self):
        assert tail_ratio(np.full(100, 4.0)) == pytest.approx(1.0)

    def test_heavy(self):
        values = np.ones(100)
        values[:2] = 500.0
        assert tail_ratio(values) > 10

    def test_empty(self):
        assert tail_ratio(np.array([])) == 0.0


class TestDegreeProfile:
    def test_web_standin_heavy_tailed(self):
        p = degree_profile(load_dataset("web-berkstan-mini", scale=9))
        assert p.heavy_tailed
        assert p.maximum > 5 * p.mean

    def test_cage_standin_uniform(self):
        p = degree_profile(load_dataset("cage15-mini", scale=9))
        assert not p.heavy_tailed
        assert p.gini < 0.2

    def test_empty_graph(self):
        p = degree_profile(DiGraph(0, [], []))
        assert p.mean == 0.0
        assert not p.heavy_tailed

    def test_as_dict_keys(self):
        p = degree_profile(generators.path_graph(5))
        d = p.as_dict()
        assert {"mean_deg", "max_deg", "gini", "tail99/mean", "alpha"} <= set(d)


class TestConvergenceTrace:
    def test_pagerank_residual_decays(self, rmat_small):
        trace = trace_convergence(lambda: PageRank(epsilon=1e-3), rmat_small,
                                  mode="nondeterministic",
                                  config=EngineConfig(threads=4, seed=0))
        assert trace.converged
        assert trace.iterations >= 3
        # residual at the end far below the start
        assert trace.residuals[-1] < trace.residuals[0] / 10
        assert trace.residual_halflife() < trace.iterations

    def test_active_set_shrinks_for_bfs(self, er_medium):
        trace = trace_convergence(lambda: BFS(source=0), er_medium,
                                  mode="deterministic")
        assert trace.active_sizes[0] == er_medium.num_vertices
        assert trace.active_sizes[-1] < trace.active_sizes[0]

    def test_conflict_counts_align(self, rmat_small):
        trace = trace_convergence(WeaklyConnectedComponents, rmat_small,
                                  mode="nondeterministic",
                                  config=EngineConfig(threads=8, seed=1))
        assert len(trace.conflict_counts) == trace.iterations
        assert sum(trace.conflict_counts) > 0

    def test_rows_structure(self, path8):
        trace = trace_convergence(WeaklyConnectedComponents, path8,
                                  mode="deterministic")
        rows = trace.rows()
        assert len(rows) == trace.iterations
        assert rows[0]["iteration"] == 0
        assert "residual" in rows[0]

    def test_total_work(self, path8):
        trace = trace_convergence(WeaklyConnectedComponents, path8,
                                  mode="deterministic")
        assert trace.total_work() == sum(trace.active_sizes)


class TestReport:
    def test_generate_report_structure(self):
        from repro.experiments import generate_report

        seen = []
        text = generate_report(scale=7, runs=2, progress=seen.append)
        for heading in ("Table I", "Fig. 3", "Table II", "Table III", "Ablations"):
            assert heading in text
        assert "web-berkstan-mini" in text
        assert seen == ["Table I", "Fig. 3", "Table II", "Table III", "ablations"]

    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        code = main(["report", "--scale", "7", "--runs", "2", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "# Reproduction report" in out.read_text()
