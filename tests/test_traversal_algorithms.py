"""Tests for WCC, MaxLabel, SSSP, BFS (the traversal family)."""

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, MaxLabelPropagation, WeaklyConnectedComponents, reference
from repro.engine import ConflictProfile, EngineConfig, Monotonicity, run
from repro.graph import DiGraph, generators


ALL_MODES = ["sync", "deterministic", "nondeterministic"]


class TestWCC:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_exact_labels(self, rmat_small, mode):
        res = run(WeaklyConnectedComponents(), rmat_small, mode=mode, threads=4)
        assert res.converged
        assert np.array_equal(res.result(), reference.wcc_reference(rmat_small))

    def test_multiple_components(self, disconnected):
        res = run(WeaklyConnectedComponents(), disconnected, mode="nondeterministic",
                  threads=4, seed=2)
        assert res.result().tolist() == [0, 0, 0, 0, 4, 4, 4]

    def test_edges_converge_to_component_min(self, path8):
        res = run(WeaklyConnectedComponents(), path8, mode="nondeterministic",
                  threads=4, seed=1)
        assert np.all(res.state.edge("label") == 0.0)

    def test_write_write_conflicts_occur(self, rmat_small):
        res = run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=0))
        assert res.conflicts.write_write > 0

    @pytest.mark.parametrize("seed", range(5))
    def test_nondet_identical_to_deterministic_across_seeds(self, rmat_small, seed):
        """Theorem 2 + absolute convergence: results never vary."""
        de = run(WeaklyConnectedComponents(), rmat_small, mode="deterministic")
        ne = run(WeaklyConnectedComponents(), rmat_small, mode="nondeterministic",
                 config=EngineConfig(threads=16, seed=seed))
        assert np.array_equal(de.result(), ne.result())

    def test_traits(self):
        t = WeaklyConnectedComponents().traits
        assert t.conflict_profile is ConflictProfile.WRITE_WRITE
        assert t.monotonicity is Monotonicity.DECREASING

    def test_star_contention(self, star6):
        res = run(WeaklyConnectedComponents(), star6, mode="nondeterministic",
                  threads=6, seed=3)
        assert np.all(res.result() == 0.0)


class TestMaxLabel:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_exact_labels(self, rmat_small, mode):
        res = run(MaxLabelPropagation(), rmat_small, mode=mode, threads=4)
        assert res.converged
        assert np.array_equal(res.result(), reference.max_label_reference(rmat_small))

    def test_multiple_components(self, disconnected):
        res = run(MaxLabelPropagation(), disconnected, mode="nondeterministic",
                  threads=4, seed=5)
        assert res.result().tolist() == [3, 3, 3, 3, 6, 6, 6]

    def test_monotone_increasing_trait(self):
        assert MaxLabelPropagation().traits.monotonicity is Monotonicity.INCREASING


class TestSSSP:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_exact_distances(self, er_medium, mode):
        prog = SSSP(source=0)
        truth = reference.sssp_reference(er_medium, 0, prog.make_weights(er_medium))
        res = run(SSSP(source=0), er_medium, mode=mode, threads=4)
        assert res.converged
        assert np.array_equal(res.result(), truth)

    def test_unreachable_vertices_stay_infinite(self):
        g = DiGraph(4, [0], [1])  # vertices 2, 3 unreachable
        res = run(SSSP(source=0), g, mode="nondeterministic", threads=2, seed=0)
        assert res.result()[2] == np.inf
        assert res.result()[3] == np.inf

    def test_source_distance_zero(self, er_medium):
        res = run(SSSP(source=5), er_medium, mode="deterministic")
        assert res.result()[5] == 0.0

    def test_explicit_weights(self):
        g = DiGraph(3, [0, 0, 1], [1, 2, 2])
        # edge order: (0,1), (0,2), (1,2)
        w = np.array([1.0, 10.0, 1.0])
        res = run(SSSP(source=0, weights=w), g, mode="deterministic")
        assert res.result().tolist() == [0.0, 1.0, 2.0]

    def test_wrong_weight_length_rejected(self):
        g = DiGraph(3, [0], [1])
        prog = SSSP(source=0, weights=np.ones(5))
        with pytest.raises(ValueError, match="one entry per edge"):
            prog.make_state(g)

    def test_source_out_of_range_rejected(self):
        g = DiGraph(3, [0], [1])
        with pytest.raises(ValueError, match="out of range"):
            SSSP(source=7).make_state(g)

    def test_negative_source_rejected(self):
        with pytest.raises(ValueError):
            SSSP(source=-1)

    def test_bad_weight_range_rejected(self):
        with pytest.raises(ValueError):
            SSSP(source=0, weight_low=0.0)
        with pytest.raises(ValueError):
            SSSP(source=0, weight_low=5.0, weight_high=1.0)

    def test_weights_deterministic_per_seed(self, rmat_small):
        a = SSSP(source=0, weight_seed=9).make_weights(rmat_small)
        b = SSSP(source=0, weight_seed=9).make_weights(rmat_small)
        assert np.array_equal(a, b)

    def test_read_write_conflicts_only(self, er_medium):
        res = run(SSSP(source=0), er_medium, mode="nondeterministic",
                  config=EngineConfig(threads=8, seed=1))
        assert res.conflicts.write_write == 0
        assert res.conflicts.read_write > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_results_schedule_independent(self, rmat_small, seed):
        prog = SSSP(source=0)
        truth = reference.sssp_reference(rmat_small, 0, prog.make_weights(rmat_small))
        res = run(SSSP(source=0), rmat_small, mode="nondeterministic",
                  config=EngineConfig(threads=16, seed=seed))
        assert np.array_equal(res.result(), truth)


class TestBFS:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_matches_bfs_levels(self, er_medium, mode):
        res = run(BFS(source=0), er_medium, mode=mode, threads=4)
        assert np.array_equal(res.result(), reference.bfs_reference(er_medium, 0))

    def test_unit_weights(self, rmat_small):
        w = BFS(source=0).make_weights(rmat_small)
        assert np.all(w == 1.0)

    def test_path_distances(self, path8):
        res = run(BFS(source=0), path8, mode="nondeterministic", threads=4, seed=0)
        assert res.result().tolist() == [float(i) for i in range(8)]

    def test_traits_name(self):
        assert BFS().traits.name == "BFS"

    def test_bfs_from_nonzero_source(self, path8):
        res = run(BFS(source=4), path8, mode="deterministic")
        assert res.result().tolist() == [4.0, 3.0, 2.0, 1.0, 0.0, 1.0, 2.0, 3.0]
