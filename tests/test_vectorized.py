"""Tests for the vectorized BSP engine and its algorithm implementations.

The headline property: each vectorized program is **bit-for-bit
equivalent** to its object-engine sibling under the synchronous model —
same iterations, same final arrays — including float32 PageRank (the
``np.add.at`` accumulation replays the scalar gather order exactly).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    BFS,
    SSSP,
    PageRank,
    VBFS,
    VPageRank,
    VSSSP,
    VWCC,
    WeaklyConnectedComponents,
    reference,
)
from repro.engine import EngineConfig, run, run_vectorized
from repro.graph import DiGraph, generators


GRAPHS = {
    "rmat": lambda: generators.rmat(7, 6.0, seed=2),
    "er": lambda: generators.erdos_renyi(200, 800, seed=4),
    "grid": lambda: generators.grid_graph(8, 8),
    "star": lambda: generators.star_graph(30),
    "path": lambda: generators.path_graph(20),
}


@pytest.mark.parametrize("graph_name", GRAPHS)
class TestBitExactEquivalence:
    def test_wcc(self, graph_name):
        g = GRAPHS[graph_name]()
        rv = run_vectorized(VWCC(), g)
        ro = run(WeaklyConnectedComponents(), g, mode="sync")
        assert rv.converged and ro.converged
        assert rv.num_iterations == ro.num_iterations
        assert np.array_equal(rv.result(), ro.result())
        assert np.array_equal(rv.state.edge("label"), ro.state.edge("label"))

    def test_sssp(self, graph_name):
        g = GRAPHS[graph_name]()
        rv = run_vectorized(VSSSP(source=0), g)
        ro = run(SSSP(source=0), g, mode="sync")
        assert rv.num_iterations == ro.num_iterations
        assert np.array_equal(rv.result(), ro.result())
        assert np.array_equal(rv.state.edge("dist"), ro.state.edge("dist"))

    def test_bfs(self, graph_name):
        g = GRAPHS[graph_name]()
        rv = run_vectorized(VBFS(source=0), g)
        ro = run(BFS(source=0), g, mode="sync")
        assert rv.num_iterations == ro.num_iterations
        assert np.array_equal(rv.result(), ro.result())

    def test_pagerank_float32_bitexact(self, graph_name):
        g = GRAPHS[graph_name]()
        rv = run_vectorized(VPageRank(epsilon=1e-3), g)
        ro = run(PageRank(epsilon=1e-3), g, mode="sync")
        assert rv.num_iterations == ro.num_iterations
        assert np.array_equal(rv.result(), ro.result())


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=16))
    m = draw(st.integers(min_value=0, max_value=40))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    return DiGraph(n, [u for u, _ in edges], [v for _, v in edges])


@given(small_graphs())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_wcc_equivalence_on_arbitrary_graphs(g):
    rv = run_vectorized(VWCC(), g)
    ro = run(WeaklyConnectedComponents(), g, mode="sync")
    assert rv.num_iterations == ro.num_iterations
    assert np.array_equal(rv.result(), ro.result())


@given(small_graphs())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_sssp_equivalence_on_arbitrary_graphs(g):
    rv = run_vectorized(VSSSP(source=0), g)
    ro = run(SSSP(source=0), g, mode="sync")
    assert rv.num_iterations == ro.num_iterations
    assert np.array_equal(rv.result(), ro.result())


class TestVectorizedMechanics:
    def test_correct_against_references(self):
        g = generators.rmat(9, 7.0, seed=8)
        assert np.array_equal(run_vectorized(VWCC(), g).result(),
                              reference.wcc_reference(g))
        assert np.array_equal(run_vectorized(VBFS(source=0), g).result(),
                              reference.bfs_reference(g, 0))
        prog = VSSSP(source=0)
        truth = reference.sssp_reference(g, 0, prog.make_weights(g))
        assert np.array_equal(run_vectorized(VSSSP(source=0), g).result(), truth)

    def test_active_history_recorded(self, rmat_small):
        res = run_vectorized(VWCC(), rmat_small)
        assert len(res.active_per_iteration) == res.num_iterations
        assert res.active_per_iteration[0] == rmat_small.num_vertices

    def test_max_iterations_cap(self, rmat_small):
        res = run_vectorized(VWCC(), rmat_small, max_iterations=1)
        assert not res.converged
        assert res.num_iterations == 1

    def test_empty_graph(self):
        res = run_vectorized(VWCC(), DiGraph(0, [], []))
        assert res.converged
        assert res.result().size == 0

    def test_explicit_weights(self):
        g = DiGraph(3, [0, 0, 1], [1, 2, 2])
        w = np.array([1.0, 10.0, 1.0])
        res = run_vectorized(VSSSP(source=0, weights=w), g)
        assert res.result().tolist() == [0.0, 1.0, 2.0]

    def test_substrate_speedup(self):
        """The vectorized fast path must actually be fast (>=5x here;
        typically 50x+)."""
        import time

        g = generators.rmat(11, 8.0, seed=5)
        t0 = time.perf_counter()
        rv = run_vectorized(VWCC(), g)
        t_vec = time.perf_counter() - t0
        t0 = time.perf_counter()
        ro = run(WeaklyConnectedComponents(), g, mode="sync")
        t_obj = time.perf_counter() - t0
        assert np.array_equal(rv.result(), ro.result())
        assert t_obj > 5 * t_vec
